(** Differential-snapshot delta extraction (paper Section 3, method 2;
    analysed in 3.1.2).

    Dumps the current table state to an ASCII snapshot file and, when a
    previous snapshot exists, computes the differential with one of the
    {!Dw_snapshot.Snapshot_diff} algorithms.  Like the timestamp method it
    sees only final states; unlike it, it {e does} observe deletes.
    The paper's verdict — most expensive method, applicable only when
    snapshots are the sole access path — falls out of the costs: a full
    dump plus a full diff per extraction. *)

module Db = Dw_engine.Db

type algorithm =
  | Sort_merge
  | Partitioned_hash of int   (** bucket count *)
  | Window of int             (** aging-buffer rows (Labio & Garcia-Molina) *)
  | External_sort of int      (** sorted-run rows (bounded-memory sort-merge) *)

type stats = {
  rows : int;             (** delta entries *)
  dumped_rows : int;      (** current snapshot size *)
  dump_bytes : int;
  scratch_bytes : int;    (** partition traffic (Partitioned_hash only) *)
}

val work_units : table_rows:int -> delta_rows:int -> float
(** Deterministic extraction-work estimate in abstract row-visit units —
    the cost hook {!Dw_etl.Planner} calibrates and compares across
    methods.  A snapshot round dumps the whole current table and re-reads
    the previous snapshot for the diff: [2 * table_rows + delta_rows].
    The paper's verdict (most expensive method) is this term's
    [table_rows] factor, paid even when the delta is empty. *)

val extract :
  Db.t ->
  table:string ->
  prev_snapshot:string option ->
  snapshot_dest:string ->
  algorithm:algorithm ->
  (Delta.t * stats, string) result
(** With [prev_snapshot = None] the delta is every current row as an
    insert (initial load).  [snapshot_dest] receives the new snapshot for
    the next round. *)
