(* W5 — domain-parallel snapshot OLAP under a concurrent batch refresh.

   The tentpole measurement for the multicore read path: the same analyst
   query mix as W3, but executed by Par_scan over a Domain_pool at
   1/2/4/8 domains, while the W3 batch-outage scenario (one big
   value-delta refresh transaction) runs concurrently on its own domain.
   Snapshot readers take no locks, so the refresh never blocks them; the
   question is pure read-side scaling.

   The warehouse is made deliberately I/O-bound: the in-memory Vfs gets a
   per-operation delay and the buffer pool is sized well below the table,
   so every scan faults most of its pages and the partitions' simulated
   I/O waits overlap across domains.  That keeps the speedup signal
   meaningful even on a single-core host — domains overlap sleeps, not
   compute.

   After the refresh domain joins (quiesced warehouse), every query is
   run once more through both the sequential executor and Par_scan on one
   snapshot and the results compared structurally: the parallel path must
   be byte-identical, row order and column naming included.

   Emitted metrics (the w5.* keys gated by Bench_check):
   - histograms  w5.olap_latency_d{n} (per-query seconds, per domain count)
   - gauges      w5.olap_qps_d{n}, w5.olap_p95_d{n}_s,
                 w5.speedup_d4 (throughput at 4 domains over 1 domain),
                 w5.identical (1.0 when parallel == sequential results),
                 w5.partitions, w5.refresh_window_s *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Metrics = Dw_util.Metrics
module Domain_pool = Dw_util.Domain_pool
module Prng = Dw_util.Prng
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Trigger_extract = Dw_core.Trigger_extract
module Warehouse = Dw_warehouse.Warehouse
module Olap = Dw_warehouse.Olap
module Par_scan = Dw_warehouse.Par_scan
open Bench_support

(* pool far smaller than the table so repeated scans keep missing; enough
   stripes that domains rarely share a latch *)
let pool_pages = 16
let pool_stripes = 8
let partitions = 8
let op_delay = 200e-6
let refresh_txns = 10
let refresh_txn_size = 40

let queries = Olap.standard_queries ~table:"parts"

let mk_slow_warehouse ~rows =
  let vfs = Vfs.in_memory ~op_delay () in
  let wh = Warehouse.create ~pool_pages ~pool_stripes ~vfs ~name:"dw" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  let rng = Prng.create ~seed:77 in
  Warehouse.load_replica wh ~table:"parts"
    (List.init rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
  wh

(* the refresh payload: the same shape as W3's batch arm — source-side
   update transactions captured by triggers into one value delta *)
let build_refresh_delta ~rows =
  let src = fresh_source ~rows () in
  Db.set_day src (Db.current_day src + 1);
  let handle = Trigger_extract.install src ~table:"parts" in
  List.iter
    (fun od ->
      Db.with_txn src (fun txn ->
          List.iter
            (fun (op : Op_delta.op) -> ignore (Db.exec src txn op.Op_delta.stmt : Db.exec_result))
            od.Op_delta.ops))
    (List.init refresh_txns (fun i ->
         Op_delta.make ~txn_id:i
           [ Workload.update_parts_stmt ~first_id:(1 + (i * 50)) ~size:refresh_txn_size ]));
  Trigger_extract.collect src handle

type arm = { domains : int; qps : float; p95 : float; wall : float; wh : Warehouse.t }

let run_arm ~rows ~vd ~domains ~queries_n =
  let wh = mk_slow_warehouse ~rows in
  let db = Warehouse.db wh in
  let metrics = Db.metrics db in
  let label = Printf.sprintf "d%d" domains in
  Domain_pool.with_pool ~domains @@ fun pool ->
  (* the W3 batch-outage scenario, concurrent: one value-delta refresh
     transaction on its own domain while the parallel readers run *)
  let refresh_window = ref 0.0 in
  let refresher =
    Domain.spawn (fun () ->
        let t0 = Unix.gettimeofday () in
        ignore (Warehouse.integrate_value_delta wh vd : Warehouse.stats);
        refresh_window := Unix.gettimeofday () -. t0)
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to queries_n - 1 do
    let q = List.nth queries (i mod List.length queries) in
    match Olap.run_parallel ~partitions ~pool wh q with
    | Ok r -> Metrics.observe metrics ("w5.olap_latency_" ^ label) r.Olap.duration
    | Error e -> failwith (Printf.sprintf "w5 %s: %s: %s" label q.Olap.name e)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Domain.join refresher;
  let qps = float_of_int queries_n /. wall in
  let p95 = Metrics.percentile metrics ("w5.olap_latency_" ^ label) 0.95 in
  Metrics.set_gauge metrics ("w5.olap_qps_" ^ label) qps;
  Metrics.set_gauge metrics ("w5.olap_p95_" ^ label ^ "_s") p95;
  Metrics.set_gauge metrics "w5.refresh_window_s" !refresh_window;
  { domains; qps; p95; wall; wh }

(* quiesced byte-identity check: same snapshot, sequential vs parallel *)
let check_identical wh =
  let db = Warehouse.db wh in
  Domain_pool.with_pool ~domains:4 @@ fun pool ->
  List.for_all
    (fun (q : Olap.query) ->
      let txn = Db.begin_txn ~mode:`Snapshot db in
      let seq = Db.exec_sql db txn q.Olap.sql in
      let par = Par_scan.exec_sql ~partitions ~pool db txn q.Olap.sql in
      Db.commit db txn;
      seq = par)
    queries

let run_w5 ~scale =
  section "W5: domain-parallel snapshot OLAP under concurrent batch refresh";
  let rows = (if is_quick () then 2_000 else 8_000) * scale in
  let queries_n = if is_quick () then 10 else 25 in
  let domain_counts = if is_quick () then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let vd = build_refresh_delta ~rows in
  let arms = List.map (fun d -> run_arm ~rows ~vd ~domains:d ~queries_n) domain_counts in
  let arm d = List.find (fun a -> a.domains = d) arms in
  let speedup = (arm 4).qps /. (arm 1).qps in
  let last = List.nth arms (List.length arms - 1) in
  let identical = check_identical last.wh in
  let metrics = Db.metrics (Warehouse.db last.wh) in
  Metrics.set_gauge metrics "w5.speedup_d4" speedup;
  Metrics.set_gauge metrics "w5.identical" (if identical then 1.0 else 0.0);
  Metrics.set_gauge metrics "w5.partitions" (float_of_int partitions);
  print_table
    ~title:
      (Printf.sprintf
         "%d queries over %d rows (pool %d pages / %d stripes, %d partitions, %.0f us/op vfs \
          delay), value-delta refresh concurrent"
         queries_n rows pool_pages pool_stripes partitions (op_delay *. 1e6))
    ~header:[ "domains"; "throughput (q/s)"; "p95 latency"; "query phase" ]
    ~rows:
      (List.map
         (fun a ->
           [
             string_of_int a.domains;
             Printf.sprintf "%.1f" a.qps;
             dur a.p95;
             dur a.wall;
           ])
         arms);
  Printf.printf
    "speedup at 4 domains vs 1: %.2fx; parallel results %s sequential\n\
     shape check: snapshot readers never wait on the refresh transaction, so throughput \
     scales with overlapped page-fault I/O until the domains saturate the simulated disk\n"
    speedup
    (if identical then "byte-identical to" else "DIVERGE from")
