module Ast = Dw_sql.Ast
module Sim_clock = Dw_util.Sim_clock
module Metrics = Dw_util.Metrics
module Prng = Dw_util.Prng

type phase_kind = Insert_heavy | Update_heavy | Scan_heavy

let phase_name = function
  | Insert_heavy -> "insert-heavy"
  | Update_heavy -> "update-heavy"
  | Scan_heavy -> "scan-heavy"

type phase = { kind : phase_kind; rate : int; seconds : int }

type config = {
  phases : phase list;
  slo_ms : float;
  service_fixed_ms : float;
  service_per_row_ms : float;
  update_size : int;
  scan_rows : int;
  aimd_decrease : float;
  aimd_increase : int;
  min_rate : int;
}

let default_config =
  {
    phases =
      [
        { kind = Insert_heavy; rate = 40; seconds = 30 };
        { kind = Update_heavy; rate = 40; seconds = 30 };
        { kind = Scan_heavy; rate = 40; seconds = 30 };
      ];
    slo_ms = 250.0;
    service_fixed_ms = 1.0;
    service_per_row_ms = 0.4;
    update_size = 8;
    scan_rows = 160;
    aimd_decrease = 0.5;
    aimd_increase = 8;
    min_rate = 4;
  }

let validate_config c =
  let bad fmt = Printf.ksprintf invalid_arg ("Load_gen.validate_config: " ^^ fmt) in
  let finite name v = if Float.is_nan v || v = infinity then bad "%s is not finite" name in
  if c.phases = [] then bad "phases is empty";
  List.iteri
    (fun i p ->
      if p.rate < 1 then bad "phase %d rate %d < 1" i p.rate;
      if p.seconds < 1 then bad "phase %d seconds %d < 1" i p.seconds)
    c.phases;
  finite "slo_ms" c.slo_ms;
  if c.slo_ms <= 0.0 then bad "slo_ms %g <= 0" c.slo_ms;
  finite "service_fixed_ms" c.service_fixed_ms;
  if c.service_fixed_ms < 0.0 then bad "service_fixed_ms %g < 0" c.service_fixed_ms;
  finite "service_per_row_ms" c.service_per_row_ms;
  if c.service_per_row_ms < 0.0 then bad "service_per_row_ms %g < 0" c.service_per_row_ms;
  if c.update_size < 1 then bad "update_size %d < 1" c.update_size;
  if c.scan_rows < 1 then bad "scan_rows %d < 1" c.scan_rows;
  finite "aimd_decrease" c.aimd_decrease;
  if c.aimd_decrease <= 0.0 || c.aimd_decrease >= 1.0 then
    bad "aimd_decrease %g outside (0, 1)" c.aimd_decrease;
  if c.aimd_increase < 1 then bad "aimd_increase %d < 1" c.aimd_increase;
  if c.min_rate < 1 then bad "min_rate %d < 1" c.min_rate

type op = Dml of Workload.op | Scan of int

let op_rows _cfg = function
  | Dml (Workload.Mix_insert _) -> 1
  | Dml (Workload.Mix_update (_, size)) | Dml (Workload.Mix_delete (_, size)) -> size
  | Scan rows -> rows

type tick_stats = {
  tick : int;
  phase : phase_kind;
  phase_tick : int;
  offered : int;
  admitted : int;
  shed : int;
  ops : op list;
  p95_ms : float;
  slo_met : bool;
  valve : int;
  lock_wait_p95_s : float;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  prng : Prng.t;
  seed : int;
  clock : Sim_clock.t;
  total : int;  (* total configured seconds *)
  mutable tick_no : int;
  mutable next_id : int;
  mutable valve : int;
  mutable server_free_ms : float;  (* single-server queue horizon *)
  (* summary accumulators *)
  mutable sum_offered : int;
  mutable sum_admitted : int;
  mutable sum_shed : int;
  mutable breaches : int;
  mutable worst_p95 : float;
}

let create ?(config = default_config) ?metrics ?(seed = 42) ~clock ~existing_ids () =
  validate_config config;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    cfg = config;
    metrics;
    prng = Prng.create ~seed;
    seed;
    clock;
    total = List.fold_left (fun acc p -> acc + p.seconds) 0 config.phases;
    tick_no = 0;
    next_id = existing_ids + 1;
    valve = (match config.phases with p :: _ -> p.rate | [] -> 1);
    server_free_ms = 0.0;
    sum_offered = 0;
    sum_admitted = 0;
    sum_shed = 0;
    breaches = 0;
    worst_p95 = 0.0;
  }

let total_seconds t = t.total
let finished t = t.tick_no >= t.total

(* which phase a (1-based) tick falls in, plus the tick's offset in it *)
let phase_at t tick =
  let rec go start = function
    | [] -> invalid_arg "Load_gen.tick: past the last phase"
    | p :: rest -> if tick <= start + p.seconds then (p, tick - start) else go (start + p.seconds) rest
  in
  go 0 t.cfg.phases

(* per-phase mix weights out of 20 draws: the dominant statement shape
   shifts enough that the cheapest extraction method changes with it *)
let draw_op t kind =
  let existing = max 1 (t.next_id - 1) in
  let range_start size = 1 + Prng.int t.prng (max 1 (existing - size)) in
  let insert () =
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Dml (Workload.Mix_insert id)
  in
  let update () = Dml (Workload.Mix_update (range_start t.cfg.update_size, t.cfg.update_size)) in
  let small_update () = Dml (Workload.Mix_update (range_start 2, 2)) in
  let delete () = Dml (Workload.Mix_delete (range_start 2, 2)) in
  let scan () = Scan t.cfg.scan_rows in
  let d = Prng.int t.prng 20 in
  match kind with
  | Insert_heavy ->
    (* 17/20 insert, 2/20 small update, 1/20 scan — no deletes, so the
       timestamp method stays eligible in this phase *)
    if d < 17 then insert () else if d < 19 then small_update () else scan ()
  | Update_heavy ->
    (* 14/20 range update, 2/20 delete, 3/20 insert, 1/20 scan: many rows
       from few statements *)
    if d < 14 then update ()
    else if d < 16 then delete ()
    else if d < 19 then insert ()
    else scan ()
  | Scan_heavy ->
    (* 15/20 scan, 2/20 insert, 2/20 small update, 1/20 delete: a trickle
       of changes under read contention *)
    if d < 15 then scan ()
    else if d < 17 then insert ()
    else if d < 19 then small_update ()
    else delete ()

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let tick t =
  if finished t then invalid_arg "Load_gen.tick: all phases finished";
  t.tick_no <- t.tick_no + 1;
  let phase, phase_tick = phase_at t t.tick_no in
  (* a phase change resets the valve to the new target: the valve damps
     overload, not phase transitions *)
  if phase_tick = 1 then t.valve <- phase.rate;
  let offered = phase.rate in
  let admitted = min offered (max t.cfg.min_rate t.valve) in
  let shed = offered - admitted in
  (* shed ops still consume PRNG draws so admission does not change the
     op sequence the admitted prefix sees *)
  let ops = List.init offered (fun _ -> draw_op t phase.kind) in
  let admitted_ops = List.filteri (fun i _ -> i < admitted) ops in
  (* open loop: arrival i is pinned to the offered rate's timeline *)
  let tick_start = float_of_int (t.tick_no - 1) *. 1000.0 in
  let gap = 1000.0 /. float_of_int offered in
  let latencies = Array.make (max 1 admitted) 0.0 in
  let waits = Array.make (max 1 admitted) 0.0 in
  t.server_free_ms <- Float.max t.server_free_ms tick_start;
  List.iteri
    (fun i op ->
      let arrival = tick_start +. (float_of_int i *. gap) in
      let service =
        t.cfg.service_fixed_ms
        +. (t.cfg.service_per_row_ms *. float_of_int (op_rows t.cfg op))
      in
      let start = Float.max arrival t.server_free_ms in
      let completion = start +. service in
      t.server_free_ms <- completion;
      latencies.(i) <- completion -. arrival;
      waits.(i) <- start -. arrival)
    admitted_ops;
  Array.sort compare latencies;
  Array.sort compare waits;
  let p95_ms = if admitted = 0 then 0.0 else percentile latencies 0.95 in
  let lock_wait_p95_s = if admitted = 0 then 0.0 else percentile waits 0.95 /. 1000.0 in
  let slo_met = p95_ms <= t.cfg.slo_ms in
  (* AIMD: halve on breach, creep back while the SLO holds *)
  t.valve <-
    (if slo_met then min phase.rate (t.valve + t.cfg.aimd_increase)
     else max t.cfg.min_rate (int_of_float (float_of_int t.valve *. t.cfg.aimd_decrease)));
  Sim_clock.advance t.clock 1000;
  t.sum_offered <- t.sum_offered + offered;
  t.sum_admitted <- t.sum_admitted + admitted;
  t.sum_shed <- t.sum_shed + shed;
  if not slo_met then t.breaches <- t.breaches + 1;
  t.worst_p95 <- Float.max t.worst_p95 p95_ms;
  Metrics.add t.metrics "loadgen.offered" offered;
  Metrics.add t.metrics "loadgen.admitted" admitted;
  Metrics.add t.metrics "loadgen.shed" shed;
  if not slo_met then Metrics.incr t.metrics "loadgen.slo_breaches";
  Metrics.set_gauge t.metrics "loadgen.valve" (float_of_int t.valve);
  Metrics.set_gauge t.metrics "loadgen.p95_ms" p95_ms;
  Metrics.observe t.metrics "loadgen.latency_ms" p95_ms;
  {
    tick = t.tick_no;
    phase = phase.kind;
    phase_tick;
    offered;
    admitted;
    shed;
    ops = admitted_ops;
    p95_ms;
    slo_met;
    valve = t.valve;
    lock_wait_p95_s;
  }

let stmts_of_op t ~day = function
  | Scan _ -> []
  | Dml op -> Workload.op_to_stmts ~seed:t.seed ~day op

type summary = {
  ticks : int;
  total_offered : int;
  total_admitted : int;
  total_shed : int;
  slo_breaches : int;
  slo_attainment : float;
  worst_p95_ms : float;
}

let summary t =
  {
    ticks = t.tick_no;
    total_offered = t.sum_offered;
    total_admitted = t.sum_admitted;
    total_shed = t.sum_shed;
    slo_breaches = t.breaches;
    slo_attainment =
      (if t.tick_no = 0 then 1.0
       else float_of_int (t.tick_no - t.breaches) /. float_of_int t.tick_no);
    worst_p95_ms = t.worst_p95;
  }
