test/test_cots.ml: Alcotest Dw_core Dw_cots Dw_engine Dw_relation Dw_sql Dw_storage Dw_util Dw_workload List Printf
