test/test_core.ml: Alcotest Array Dw_core Dw_engine Dw_relation Dw_sql Dw_storage Dw_txn Dw_util Dw_workload List Printf QCheck2 QCheck_alcotest Result
