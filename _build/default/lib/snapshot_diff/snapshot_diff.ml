module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec
module Vfs = Dw_storage.Vfs

type entry = Added of Tuple.t | Removed of Tuple.t | Changed of Tuple.t * Tuple.t

let entry_key schema = function
  | Added t | Removed t | Changed (t, _) -> Tuple.key schema t

type stats = { old_rows : int; new_rows : int; entries : int; scratch_bytes : int }

let sorted_by_key schema rows =
  let sorted = List.sort (Tuple.compare_key schema) rows in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if Tuple.compare_key schema a b = 0 then
        invalid_arg
          (Printf.sprintf "Snapshot_diff: duplicate key %s within one snapshot"
             (Tuple.to_string (Tuple.key schema a)));
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let merge schema old_sorted new_sorted =
  let rec go olds news acc =
    match olds, news with
    | [], [] -> List.rev acc
    | o :: os, [] -> go os [] (Removed o :: acc)
    | [], n :: ns -> go [] ns (Added n :: acc)
    | o :: os, n :: ns ->
      let c = Tuple.compare_key schema o n in
      if c < 0 then go os news (Removed o :: acc)
      else if c > 0 then go olds ns (Added n :: acc)
      else if Tuple.equal o n then go os ns acc
      else go os ns (Changed (o, n) :: acc)
  in
  go old_sorted new_sorted []

let sort_merge schema ~old_rows ~new_rows =
  let old_sorted = sorted_by_key schema old_rows in
  let new_sorted = sorted_by_key schema new_rows in
  let entries = merge schema old_sorted new_sorted in
  ( entries,
    {
      old_rows = List.length old_rows;
      new_rows = List.length new_rows;
      entries = List.length entries;
      scratch_bytes = 0;
    } )

(* ---------- partitioned hash ---------- *)

let key_hash schema tuple buckets =
  let key = Tuple.key schema tuple in
  let h =
    Array.fold_left
      (fun acc v -> (acc * 31) + Hashtbl.hash (Dw_relation.Value.to_string v))
      17 key
  in
  (h land max_int) mod buckets

let read_snapshot_lines vfs fname =
  match Vfs.open_existing vfs fname with
  | exception Not_found -> Error (Printf.sprintf "no such snapshot file %s" fname)
  | file ->
    let len = Vfs.size file in
    let data = if len = 0 then Bytes.create 0 else Vfs.read_at file ~off:0 ~len in
    Vfs.close file;
    let lines = ref [] in
    let pos = ref 0 in
    while !pos < len do
      let nl =
        let rec go i = if i >= len || Bytes.get data i = '\n' then i else go (i + 1) in
        go !pos
      in
      if nl > !pos then lines := Bytes.sub_string data !pos (nl - !pos) :: !lines;
      pos := nl + 1
    done;
    Ok (List.rev !lines)

let partitioned_hash ?(buckets = 16) vfs schema ~old_file ~new_file =
  if buckets < 1 then invalid_arg "Snapshot_diff.partitioned_hash: buckets < 1";
  let scratch = ref 0 in
  let partition src tag =
    match read_snapshot_lines vfs src with
    | Error e -> Error e
    | Ok lines ->
      let files =
        Array.init buckets (fun i ->
            Vfs.create vfs (Printf.sprintf "%s.part%d.%s" src i tag))
      in
      let bufs = Array.init buckets (fun _ -> Buffer.create 1024) in
      let err = ref None in
      List.iter
        (fun line ->
          if !err = None then
            match Codec.decode_ascii schema line with
            | Ok tuple ->
              let b = key_hash schema tuple buckets in
              Buffer.add_string bufs.(b) line;
              Buffer.add_char bufs.(b) '\n'
            | Error e -> err := Some e)
        lines;
      (match !err with
       | Some e ->
         Array.iter Vfs.close files;
         Error e
       | None ->
         Array.iteri
           (fun i file ->
             let data = Buffer.to_bytes bufs.(i) in
             ignore (Vfs.append file data : int);
             scratch := !scratch + Bytes.length data;
             Vfs.close file)
           files;
         Ok (Array.init buckets (fun i -> Printf.sprintf "%s.part%d.%s" src i tag)))
  in
  let cleanup names = Array.iter (fun n -> Vfs.delete vfs n) names in
  match partition old_file "old" with
  | Error e -> Error e
  | Ok old_parts -> (
      match partition new_file "new" with
      | Error e ->
        cleanup old_parts;
        Error e
      | Ok new_parts ->
        let read_part fname =
          match read_snapshot_lines vfs fname with
          | Error e -> Error e
          | Ok lines ->
            scratch :=
              !scratch + List.fold_left (fun acc l -> acc + String.length l + 1) 0 lines;
            let rec decode acc = function
              | [] -> Ok (List.rev acc)
              | line :: rest -> (
                  match Codec.decode_ascii schema line with
                  | Ok t -> decode (t :: acc) rest
                  | Error e -> Error e)
            in
            decode [] lines
        in
        let rec go i acc old_total new_total =
          if i >= buckets then Ok (List.rev acc, old_total, new_total)
          else
            match read_part old_parts.(i), read_part new_parts.(i) with
            | Ok old_rows, Ok new_rows ->
              let entries, _ = sort_merge schema ~old_rows ~new_rows in
              go (i + 1) (List.rev_append entries acc)
                (old_total + List.length old_rows)
                (new_total + List.length new_rows)
            | Error e, _ | _, Error e -> Error e
        in
        let result = go 0 [] 0 0 in
        cleanup old_parts;
        cleanup new_parts;
        (match result with
         | Error e -> Error e
         | Ok (entries, old_rows, new_rows) ->
           Ok
             ( entries,
               { old_rows; new_rows; entries = List.length entries; scratch_bytes = !scratch } )))

(* ---------- sliding window ---------- *)

module Key_map = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(* an aging buffer: FIFO of rows with an index by key *)
module Aging = struct
  type t = {
    mutable fifo : (int * Tuple.t) list;  (* newest first; (seq, row) *)
    mutable index : (int * Tuple.t) Key_map.t;
    mutable count : int;
    mutable next_seq : int;
  }

  let create () = { fifo = []; index = Key_map.empty; count = 0; next_seq = 0 }

  let add t key row =
    let entry = (t.next_seq, row) in
    t.next_seq <- t.next_seq + 1;
    t.fifo <- entry :: t.fifo;
    t.index <- Key_map.add key entry t.index;
    t.count <- t.count + 1

  let take t key =
    match Key_map.find_opt key t.index with
    | None -> None
    | Some (seq, row) ->
      t.index <- Key_map.remove key t.index;
      t.fifo <- List.filter (fun (s, _) -> s <> seq) t.fifo;
      t.count <- t.count - 1;
      Some row

  (* evict the oldest still-live row *)
  let evict_oldest t schema =
    match List.rev t.fifo with
    | [] -> None
    | (seq, row) :: _ ->
      t.fifo <- List.filter (fun (s, _) -> s <> seq) t.fifo;
      t.index <- Key_map.remove (Tuple.key schema row) t.index;
      t.count <- t.count - 1;
      Some row

  let drain t =
    let rows = List.rev_map snd t.fifo in
    t.fifo <- [];
    t.index <- Key_map.empty;
    t.count <- 0;
    rows
end

let window ?(window_rows = 1024) vfs schema ~old_file ~new_file =
  if window_rows < 1 then invalid_arg "Snapshot_diff.window: window_rows < 1";
  match read_snapshot_lines vfs old_file, read_snapshot_lines vfs new_file with
  | Error e, _ | _, Error e -> Error e
  | Ok old_lines, Ok new_lines ->
    let decode line = Codec.decode_ascii schema line in
    let entries = ref [] in
    let old_buf = Aging.create () and new_buf = Aging.create () in
    let emit e = entries := e :: !entries in
    let err = ref None in
    let step_old line =
      match decode line with
      | Error e -> err := Some e
      | Ok row -> (
          let key = Tuple.key schema row in
          match Aging.take new_buf key with
          | Some new_row -> if not (Tuple.equal row new_row) then emit (Changed (row, new_row))
          | None ->
            Aging.add old_buf key row;
            if old_buf.Aging.count > window_rows then
              match Aging.evict_oldest old_buf schema with
              | Some evicted -> emit (Removed evicted)
              | None -> ())
    in
    let step_new line =
      match decode line with
      | Error e -> err := Some e
      | Ok row -> (
          let key = Tuple.key schema row in
          match Aging.take old_buf key with
          | Some old_row -> if not (Tuple.equal old_row row) then emit (Changed (old_row, row))
          | None ->
            Aging.add new_buf key row;
            if new_buf.Aging.count > window_rows then
              match Aging.evict_oldest new_buf schema with
              | Some evicted -> emit (Added evicted)
              | None -> ())
    in
    (* lockstep over both files *)
    let rec go olds news =
      if !err <> None then ()
      else
        match olds, news with
        | [], [] -> ()
        | o :: os, [] ->
          step_old o;
          go os []
        | [], n :: ns ->
          step_new n;
          go [] ns
        | o :: os, n :: ns ->
          step_old o;
          if !err = None then step_new n;
          go os ns
    in
    go old_lines new_lines;
    (match !err with
     | Some e -> Error e
     | None ->
       List.iter (fun row -> emit (Removed row)) (Aging.drain old_buf);
       List.iter (fun row -> emit (Added row)) (Aging.drain new_buf);
       (* group Removed before Changed before Added: a key displaced past
          the window emits a spurious Removed+Added pair, and replaying
          the removal first keeps apply-order semantics correct *)
       let entries = List.rev !entries in
       let removed = List.filter (function Removed _ -> true | _ -> false) entries in
       let changed = List.filter (function Changed _ -> true | _ -> false) entries in
       let added = List.filter (function Added _ -> true | _ -> false) entries in
       let entries = removed @ changed @ added in
       Ok
         ( entries,
           {
             old_rows = List.length old_lines;
             new_rows = List.length new_lines;
             entries = List.length entries;
             scratch_bytes = 0;
           } ))

(* ---------- external sort-merge ---------- *)

(* streaming reader over the lines of a scratch run file *)
module Run_reader = struct
  type t = {
    file : Vfs.file;
    size : int;
    mutable pos : int;
    mutable buf : string;
    mutable buf_off : int;  (* file offset buf starts at *)
  }

  let block = 8192

  let open_run vfs name =
    let file = Vfs.open_existing vfs name in
    { file; size = Vfs.size file; pos = 0; buf = ""; buf_off = 0 }

  let rec next_line t =
    if t.pos >= t.size then None
    else begin
      let local = t.pos - t.buf_off in
      if local < 0 || local >= String.length t.buf then begin
        let len = min block (t.size - t.pos) in
        t.buf <- Bytes.to_string (Vfs.read_at t.file ~off:t.pos ~len);
        t.buf_off <- t.pos;
        next_line t
      end
      else
        match String.index_from_opt t.buf local '\n' with
        | Some nl ->
          let line = String.sub t.buf local (nl - local) in
          t.pos <- t.buf_off + nl + 1;
          Some line
        | None ->
          if t.buf_off + String.length t.buf >= t.size then begin
            (* final unterminated line *)
            let line = String.sub t.buf local (String.length t.buf - local) in
            t.pos <- t.size;
            if line = "" then None else Some line
          end
          else begin
            (* refill from current position with a bigger window *)
            let len = min (max block (2 * String.length t.buf)) (t.size - t.pos) in
            t.buf <- Bytes.to_string (Vfs.read_at t.file ~off:t.pos ~len);
            t.buf_off <- t.pos;
            next_line t
          end
    end

  let close t = Vfs.close t.file
end

let external_sort_merge ?(run_rows = 1024) vfs schema ~old_file ~new_file =
  if run_rows < 1 then invalid_arg "Snapshot_diff.external_sort_merge: run_rows < 1";
  let scratch = ref 0 in
  let scratch_names = ref [] in
  let open_readers = ref [] in
  let exception Fail of string in
  let make_runs src tag =
    match read_snapshot_lines vfs src with
    | Error e -> raise (Fail e)
    | Ok lines ->
      (* decode for sorting, re-encode into the run files *)
      let decode line =
        match Codec.decode_ascii schema line with
        | Ok t -> t
        | Error e -> raise (Fail e)
      in
      let rec chunks acc current n = function
        | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
        | line :: rest ->
          if n = run_rows then chunks (List.rev current :: acc) [ line ] 1 rest
          else chunks acc (line :: current) (n + 1) rest
      in
      let runs = chunks [] [] 0 lines in
      List.mapi
        (fun i run_lines ->
          let rows = List.map decode run_lines in
          let sorted = List.sort (Tuple.compare_key schema) rows in
          let name = Printf.sprintf "%s.run%d.%s" src i tag in
          let file = Vfs.create vfs name in
          let buf = Buffer.create 8192 in
          List.iter
            (fun r ->
              Buffer.add_string buf (Codec.encode_ascii schema r);
              Buffer.add_char buf '\n')
            sorted;
          let data = Buffer.to_bytes buf in
          ignore (Vfs.append file data : int);
          scratch := !scratch + Bytes.length data;
          Vfs.close file;
          scratch_names := name :: !scratch_names;
          name)
        runs
  in
  (* k-way merge of sorted runs into a sorted stream of tuples *)
  let merged_stream run_names =
    let readers =
      List.map
        (fun name ->
          let r = Run_reader.open_run vfs name in
          open_readers := r :: !open_readers;
          (r, ref None))
        run_names
    in
    let refill (r, head) =
      if !head = None then
        match Run_reader.next_line r with
        | None -> ()
        | Some line -> (
            scratch := !scratch + String.length line + 1;
            match Codec.decode_ascii schema line with
            | Ok t -> head := Some t
            | Error e -> raise (Fail e))
    in
    let next () =
      List.iter refill readers;
      let best =
        List.fold_left
          (fun acc (_, head) ->
            match acc, !head with
            | None, Some t -> Some (t, head)
            | Some (bt, _), Some t when Tuple.compare_key schema t bt < 0 -> Some (t, head)
            | acc, _ -> acc)
          None readers
      in
      match best with
      | None -> None
      | Some (t, head) ->
        head := None;
        Some t
    in
    (next, fun () -> List.iter (fun (r, _) -> Run_reader.close r) readers)
  in
  let result =
    try
      let old_runs = make_runs old_file "eold" in
      let new_runs = make_runs new_file "enew" in
      let next_old, close_old = merged_stream old_runs in
      let next_new, close_new = merged_stream new_runs in
      (* merge-join the two sorted streams *)
      let entries = ref [] in
      let emit e = entries := e :: !entries in
      let counts = ref (0, 0) in
      let check_dup last t side =
        match last with
        | Some prev when Tuple.compare_key schema prev t = 0 ->
          raise
            (Fail
               (Printf.sprintf "Snapshot_diff: duplicate key %s within the %s snapshot"
                  (Tuple.to_string (Tuple.key schema t)) side))
        | _ -> ()
      in
      let rec go o n last_o last_n =
        match o, n with
        | None, None -> ()
        | Some ot, None ->
          check_dup last_o ot "old";
          counts := (fst !counts + 1, snd !counts);
          emit (Removed ot);
          go (next_old ()) None (Some ot) last_n
        | None, Some nt ->
          check_dup last_n nt "new";
          counts := (fst !counts, snd !counts + 1);
          emit (Added nt);
          go None (next_new ()) last_o (Some nt)
        | Some ot, Some nt ->
          check_dup last_o ot "old";
          check_dup last_n nt "new";
          let c = Tuple.compare_key schema ot nt in
          if c < 0 then begin
            counts := (fst !counts + 1, snd !counts);
            emit (Removed ot);
            go (next_old ()) n (Some ot) last_n
          end
          else if c > 0 then begin
            counts := (fst !counts, snd !counts + 1);
            emit (Added nt);
            go o (next_new ()) last_o (Some nt)
          end
          else begin
            counts := (fst !counts + 1, snd !counts + 1);
            if not (Tuple.equal ot nt) then emit (Changed (ot, nt));
            go (next_old ()) (next_new ()) (Some ot) (Some nt)
          end
      in
      go (next_old ()) (next_new ()) None None;
      ignore close_old;
      ignore close_new;
      let old_rows, new_rows = !counts in
      Ok
        ( List.rev !entries,
          { old_rows; new_rows; entries = List.length !entries; scratch_bytes = !scratch } )
    with Fail e -> Error e
  in
  (* close every run reader (success or failure) before reclaiming scratch *)
  List.iter Run_reader.close !open_readers;
  List.iter (fun name -> Vfs.delete vfs name) !scratch_names;
  result

let apply schema entries old_rows =
  let module KeyMap = Map.Make (struct
    type t = Tuple.t

    let compare = Tuple.compare
  end) in
  let table =
    List.fold_left
      (fun acc row -> KeyMap.add (Tuple.key schema row) row acc)
      KeyMap.empty old_rows
  in
  let table =
    List.fold_left
      (fun acc entry ->
        match entry with
        | Added t -> KeyMap.add (Tuple.key schema t) t acc
        | Removed t -> KeyMap.remove (Tuple.key schema t) acc
        | Changed (_, after) -> KeyMap.add (Tuple.key schema after) after acc)
      table entries
  in
  List.map snd (KeyMap.bindings table)
