module Tuple = Dw_relation.Tuple

type event =
  | Inserted of Dw_storage.Heap_file.rid * Tuple.t
  | Deleted of Dw_storage.Heap_file.rid * Tuple.t
  | Updated of Dw_storage.Heap_file.rid * Tuple.t * Tuple.t

type on = On_insert | On_delete | On_update

type 'ctx t = {
  name : string;
  on : on list;
  action : 'ctx -> event -> unit;
}

let fires_on t event =
  match event with
  | Inserted _ -> List.mem On_insert t.on
  | Deleted _ -> List.mem On_delete t.on
  | Updated _ -> List.mem On_update t.on
