(* CI bench-regression gate: compare a fresh dwbench --json document
   against the committed baseline with the per-metric tolerance table in
   Dw_experiments.Bench_compare.

     bench_compare BASELINE CANDIDATE [TOLERANCE]

   Exit 0 when every gated gauge is within band, 1 on regression or
   missing candidate gauges, 2 on unreadable/invalid input.  TOLERANCE
   (default 1.0) scales every band - the CI job can loosen a noisy
   runner without editing the table. *)

let read_doc path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e ->
    Printf.eprintf "bench_compare: cannot read %s: %s\n" path e;
    exit 2
  | text -> (
      match Dw_util.Json.of_string text with
      | Ok doc -> doc
      | Error e ->
        Printf.eprintf "bench_compare: %s does not parse: %s\n" path e;
        exit 2)

let () =
  let base_path, cand_path, tolerance =
    match Sys.argv with
    | [| _; b; c |] -> (b, c, 1.0)
    | [| _; b; c; t |] -> (
        match float_of_string_opt t with
        | Some t when t > 0.0 -> (b, c, t)
        | _ ->
          Printf.eprintf "bench_compare: TOLERANCE must be a number > 0, got %S\n" t;
          exit 2)
    | _ ->
      Printf.eprintf "usage: bench_compare BASELINE CANDIDATE [TOLERANCE]\n";
      exit 2
  in
  let base = read_doc base_path and cand = read_doc cand_path in
  match Dw_experiments.Bench_compare.compare_docs ~tolerance ~base ~cand () with
  | Error e ->
    Printf.eprintf "bench_compare: %s\n" e;
    exit 2
  | Ok report ->
    print_string (Dw_experiments.Bench_compare.render report);
    if report.Dw_experiments.Bench_compare.failures > 0 then exit 1
