module Heap_file = Dw_storage.Heap_file

type stats = {
  records_scanned : int;
  winners : int;
  losers : int;
  redone : int;
  undone : int;
}

type tx_state = Active | Committed | Aborted

let run ~wal ~resolve =
  (* analysis *)
  let states : (int, tx_state) Hashtbl.t = Hashtbl.create 32 in
  let scanned = ref 0 in
  Wal.iter_all wal (fun _ record ->
      incr scanned;
      match record.Log_record.body with
      | Log_record.Begin -> Hashtbl.replace states record.tx Active
      | Log_record.Commit -> Hashtbl.replace states record.tx Committed
      | Log_record.Abort -> Hashtbl.replace states record.tx Aborted
      | Log_record.Insert _ | Log_record.Delete _ | Log_record.Update _ ->
        if not (Hashtbl.mem states record.tx) then Hashtbl.replace states record.tx Active
      | Log_record.Checkpoint _ -> ());
  let state tx = match Hashtbl.find_opt states tx with Some s -> s | None -> Active in
  let winners = Hashtbl.fold (fun _ s n -> if s = Committed then n + 1 else n) states 0 in
  let losers =
    Hashtbl.fold (fun _ s n -> if s = Active || s = Aborted then n + 1 else n) states 0
  in
  (* redo committed *)
  let redone = ref 0 in
  Wal.iter_all wal (fun _ record ->
      if state record.Log_record.tx = Committed then
        match record.Log_record.body with
        | Log_record.Insert { table; rid; after } ->
          (match resolve table with
           | Some heap ->
             Heap_file.force_at heap rid (Some after);
             incr redone
           | None -> ())
        | Log_record.Delete { table; rid; _ } ->
          (match resolve table with
           | Some heap ->
             Heap_file.force_at heap rid None;
             incr redone
           | None -> ())
        | Log_record.Update { table; rid; after; _ } ->
          (match resolve table with
           | Some heap ->
             Heap_file.force_at heap rid (Some after);
             incr redone
           | None -> ())
        | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.Checkpoint _ -> ());
  (* undo losers, reverse order *)
  let loser_dml = ref [] in
  Wal.iter_all wal (fun _ record ->
      match state record.Log_record.tx with
      | Active | Aborted -> (
          match record.Log_record.body with
          | Log_record.Insert _ | Log_record.Delete _ | Log_record.Update _ ->
            loser_dml := record :: !loser_dml
          | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.Checkpoint _ ->
            ())
      | Committed -> ());
  let undone = ref 0 in
  List.iter
    (fun record ->
      match record.Log_record.body with
      | Log_record.Insert { table; rid; _ } ->
        (match resolve table with
         | Some heap ->
           Heap_file.force_at heap rid None;
           incr undone
         | None -> ())
      | Log_record.Delete { table; rid; before } ->
        (match resolve table with
         | Some heap ->
           Heap_file.force_at heap rid (Some before);
           incr undone
         | None -> ())
      | Log_record.Update { table; rid; before; _ } ->
        (match resolve table with
         | Some heap ->
           Heap_file.force_at heap rid (Some before);
           incr undone
         | None -> ())
      | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.Checkpoint _ -> ())
    !loser_dml;
  { records_scanned = !scanned; winners; losers; redone = !redone; undone = !undone }

let pp_stats ppf s =
  Format.fprintf ppf "scanned=%d winners=%d losers=%d redone=%d undone=%d" s.records_scanned
    s.winners s.losers s.redone s.undone
