module Metrics = Dw_util.Metrics

type policy = { max_group : int; max_wait_s : float }

let default_policy = { max_group = 8; max_wait_s = infinity }

let validate_policy p =
  if p.max_group < 1 then invalid_arg "Group_commit: max_group < 1";
  (* [not (>= 0.)] also catches NaN *)
  if not (p.max_wait_s >= 0.0) then invalid_arg "Group_commit: max_wait_s < 0"

type t = {
  wal : Wal.t;
  mutable policy : policy;
  mutable pending : int;
  mutable opened_at : float;  (* clock reading at the leader's registration *)
}

let create ?(policy = default_policy) wal =
  validate_policy policy;
  { wal; policy; pending = 0; opened_at = 0.0 }

let policy t = t.policy
let pending t = t.pending

(* account the open group as flushed: one histogram sample = one fsynced
   group, its value = how many commits that fsync covered *)
let account t =
  if t.pending > 0 then begin
    Metrics.observe (Wal.metrics t.wal) "wal.group_size" (float_of_int t.pending);
    t.pending <- 0
  end

let flush_group t =
  Wal.flush t.wal;
  account t

let sync t = if t.pending > 0 then flush_group t

let flush_now t =
  Wal.flush t.wal;
  account t

let absorb t = account t

let set_policy t p =
  validate_policy p;
  sync t;
  t.policy <- p

let deadline_due t =
  t.policy.max_wait_s < infinity
  && Metrics.now (Wal.metrics t.wal) -. t.opened_at >= t.policy.max_wait_s

let note_commit t =
  t.pending <- t.pending + 1;
  (* the first registrant is the leader; its registration time anchors
     the max-wait deadline *)
  if t.pending = 1 then t.opened_at <- Metrics.now (Wal.metrics t.wal);
  if t.pending >= t.policy.max_group || deadline_due t then flush_group t

let poll t = if t.pending > 0 && deadline_due t then flush_group t
