lib/workload/workload.ml: Array Dw_engine Dw_relation Dw_sql Dw_storage Dw_util List Printf
