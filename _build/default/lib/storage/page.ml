let size = 4096

let alloc () = Bytes.make size '\000'

type slot = int

let header_fixed = 4

let max_records_per_page ~record_width =
  (* capacity c must satisfy: 4 + (c+7)/8 + c*width <= size.
     Solve by starting from the no-bitmap bound and decreasing. *)
  if record_width <= 0 then invalid_arg "Page.max_records_per_page: width <= 0";
  let rec fit c =
    if c = 0 then 0
    else if header_fixed + ((c + 7) / 8) + (c * record_width) <= size then c
    else fit (c - 1)
  in
  fit ((size - header_fixed) / record_width)

let init page ~record_width =
  let cap = max_records_per_page ~record_width in
  if cap = 0 then invalid_arg "Page.init: record too wide for a page";
  Bytes.fill page 0 size '\000';
  Bytes.set_uint16_le page 0 record_width;
  Bytes.set_uint16_le page 2 cap

let record_width page = Bytes.get_uint16_le page 0
let capacity page = Bytes.get_uint16_le page 2

let bitmap_off = header_fixed
let bitmap_len page = (capacity page + 7) / 8
let records_off page = bitmap_off + bitmap_len page

let check_slot page slot =
  if slot < 0 || slot >= capacity page then
    invalid_arg (Printf.sprintf "Page: slot %d out of range (capacity %d)" slot (capacity page))

let is_used page slot =
  check_slot page slot;
  let byte = Char.code (Bytes.get page (bitmap_off + (slot / 8))) in
  byte land (1 lsl (slot mod 8)) <> 0

let set_used page slot used =
  let pos = bitmap_off + (slot / 8) in
  let byte = Char.code (Bytes.get page pos) in
  let bit = 1 lsl (slot mod 8) in
  let byte' = if used then byte lor bit else byte land lnot bit in
  Bytes.set page pos (Char.chr byte')

let used_count page =
  let n = ref 0 in
  for slot = 0 to capacity page - 1 do
    if is_used page slot then incr n
  done;
  !n

let slot_off page slot = records_off page + (slot * record_width page)

let find_free page =
  let cap = capacity page in
  let rec go slot =
    if slot >= cap then None else if not (is_used page slot) then Some slot else go (slot + 1)
  in
  go 0

let insert page record =
  let width = record_width page in
  if Bytes.length record <> width then
    invalid_arg
      (Printf.sprintf "Page.insert: record is %d bytes, page takes %d" (Bytes.length record) width);
  match find_free page with
  | None -> None
  | Some slot ->
    Bytes.blit record 0 page (slot_off page slot) width;
    set_used page slot true;
    Some slot

let write_slot page slot record =
  check_slot page slot;
  if not (is_used page slot) then invalid_arg "Page.write_slot: slot is free";
  let width = record_width page in
  if Bytes.length record <> width then invalid_arg "Page.write_slot: width mismatch";
  Bytes.blit record 0 page (slot_off page slot) width

let read_slot page slot =
  check_slot page slot;
  if not (is_used page slot) then invalid_arg "Page.read_slot: slot is free";
  Bytes.sub page (slot_off page slot) (record_width page)

let delete page slot =
  check_slot page slot;
  if not (is_used page slot) then invalid_arg "Page.delete: slot already free";
  set_used page slot false

let force_use page slot =
  check_slot page slot;
  set_used page slot true

let iter_used page f =
  for slot = 0 to capacity page - 1 do
    if is_used page slot then f slot (read_slot page slot)
  done
