module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Codec = Dw_relation.Codec

type rid = { page : int; slot : int }

let rid_compare a b =
  let c = Int.compare a.page b.page in
  if c <> 0 then c else Int.compare a.slot b.slot

let rid_to_string r = Printf.sprintf "(%d,%d)" r.page r.slot

type t = {
  pool : Buffer_pool.t;
  file : Vfs.file;
  schema : Schema.t;
  width : int;
  mutable free_pages : int list;  (* pages known to have a free slot *)
}

let create pool file schema =
  { pool; file; schema; width = Schema.record_size schema; free_pages = [] }

let attach pool file schema =
  let t = { pool; file; schema; width = Schema.record_size schema; free_pages = [] } in
  (* rebuild the free-page hint list *)
  let pages = Buffer_pool.page_count pool file in
  for pno = pages - 1 downto 0 do
    let free =
      Buffer_pool.with_page pool file pno ~dirty:false (fun page ->
          Page.used_count page < Page.capacity page)
    in
    if free then t.free_pages <- pno :: t.free_pages
  done;
  t

let schema t = t.schema
let file t = t.file
let pool t = t.pool
let page_count t = Buffer_pool.page_count t.pool t.file

let insert_encoded t record =
  let rec try_free () =
    match t.free_pages with
    | [] ->
      let pno =
        Buffer_pool.append_page t.pool t.file (fun page -> Page.init page ~record_width:t.width)
      in
      let slot =
        Buffer_pool.with_page t.pool t.file pno ~dirty:true (fun page ->
            match Page.insert page record with
            | Some slot ->
              if Page.used_count page < Page.capacity page then
                t.free_pages <- pno :: t.free_pages;
              slot
            | None -> assert false)
      in
      { page = pno; slot }
    | pno :: rest -> (
        match
          Buffer_pool.with_page t.pool t.file pno ~dirty:true (fun page -> Page.insert page record)
        with
        | Some slot ->
          let full =
            Buffer_pool.with_page t.pool t.file pno ~dirty:false (fun page ->
                Page.used_count page = Page.capacity page)
          in
          if full then t.free_pages <- rest;
          { page = pno; slot }
        | None ->
          t.free_pages <- rest;
          try_free ())
  in
  try_free ()

let insert t tuple =
  Tuple.validate_exn t.schema tuple;
  insert_encoded t (Codec.encode_binary t.schema tuple)

let insert_raw t record =
  if Bytes.length record <> t.width then
    invalid_arg
      (Printf.sprintf "Heap_file.insert_raw: record is %d bytes, expected %d"
         (Bytes.length record) t.width);
  insert_encoded t record

let check_rid t rid =
  if rid.page < 0 || rid.page >= page_count t then
    invalid_arg ("Heap_file: bad rid " ^ rid_to_string rid)

let get t rid =
  check_rid t rid;
  Buffer_pool.with_page t.pool t.file rid.page ~dirty:false (fun page ->
      let record = Page.read_slot page rid.slot in
      Codec.decode_binary t.schema record 0)

let update t rid tuple =
  check_rid t rid;
  Tuple.validate_exn t.schema tuple;
  let record = Codec.encode_binary t.schema tuple in
  Buffer_pool.with_page t.pool t.file rid.page ~dirty:true (fun page ->
      Page.write_slot page rid.slot record)

let delete t rid =
  check_rid t rid;
  Buffer_pool.with_page t.pool t.file rid.page ~dirty:true (fun page -> Page.delete page rid.slot);
  if not (List.mem rid.page t.free_pages) then t.free_pages <- rid.page :: t.free_pages

let iter_pages t ~from_page ~to_page f =
  for pno = max 0 from_page to min (to_page - 1) (page_count t - 1) do
    (* copy out the used slots, then decode outside the page callback so
       [f] may itself touch the pool *)
    let records = ref [] in
    Buffer_pool.with_page t.pool t.file pno ~dirty:false (fun page ->
        Page.iter_used page (fun slot record -> records := (slot, record) :: !records));
    List.iter
      (fun (slot, record) -> f { page = pno; slot } (Codec.decode_binary t.schema record 0))
      (List.rev !records)
  done

let iter t f = iter_pages t ~from_page:0 ~to_page:(page_count t) f

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun rid tuple -> acc := f !acc rid tuple);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc rid tuple -> (rid, tuple) :: acc))
let count t = fold t ~init:0 ~f:(fun acc _ _ -> acc + 1)
let flush t = Buffer_pool.flush_file t.pool t.file

let ensure_page t pno =
  while page_count t <= pno do
    let new_pno =
      Buffer_pool.append_page t.pool t.file (fun page -> Page.init page ~record_width:t.width)
    in
    t.free_pages <- new_pno :: t.free_pages
  done

let force_at t rid contents =
  (match contents with
   | Some record when Bytes.length record <> t.width ->
     invalid_arg "Heap_file.force_at: width mismatch"
   | Some _ | None -> ());
  (match contents with Some _ -> ensure_page t rid.page | None -> ());
  if rid.page < page_count t then
    Buffer_pool.with_page t.pool t.file rid.page ~dirty:true (fun page ->
        (* a crash can leave a page image that was never format-written
           back (all zeros) or whose header was torn: reformat it — any
           slot that should hold data is re-forced from the log *)
        if Page.record_width page <> t.width then Page.init page ~record_width:t.width;
        let used = Page.is_used page rid.slot in
        match contents, used with
        | Some record, true -> Page.write_slot page rid.slot record
        | Some record, false ->
          Page.force_use page rid.slot;
          Page.write_slot page rid.slot record
        | None, true -> Page.delete page rid.slot
        | None, false -> ())

let exists_at t rid =
  if rid.page < 0 || rid.page >= page_count t then false
  else Buffer_pool.with_page t.pool t.file rid.page ~dirty:false (fun page ->
      rid.slot >= 0 && rid.slot < Page.capacity page && Page.is_used page rid.slot)

let get_opt t rid =
  if rid.page < 0 || rid.page >= page_count t then None
  else
    let record =
      Buffer_pool.with_page t.pool t.file rid.page ~dirty:false (fun page ->
          if rid.slot >= 0 && rid.slot < Page.capacity page && Page.is_used page rid.slot then
            Some (Page.read_slot page rid.slot)
          else None)
    in
    Option.map (fun r -> Codec.decode_binary t.schema r 0) record
