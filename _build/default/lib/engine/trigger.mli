(** Row-level AFTER triggers.

    A trigger fires once per affected row, inside the transaction that
    performed the change (the paper, Section 3.1.3: "Triggers execute in
    the same transaction context as the triggering event").  The action
    receives the firing transaction and typically performs additional DML
    (e.g. inserting before/after images into a delta table), which is
    exactly where the measured trigger overhead comes from.

    Trigger actions do not fire triggers recursively. *)

module Tuple = Dw_relation.Tuple

type event =
  | Inserted of Dw_storage.Heap_file.rid * Tuple.t
  | Deleted of Dw_storage.Heap_file.rid * Tuple.t
  | Updated of Dw_storage.Heap_file.rid * Tuple.t * Tuple.t
      (** rid, before image, after image *)

type on = On_insert | On_delete | On_update

type 'ctx t = {
  name : string;
  on : on list;
  action : 'ctx -> event -> unit;
}

val fires_on : 'ctx t -> event -> bool
