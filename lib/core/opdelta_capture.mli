(** Op-Delta capture wrapper (paper Section 4.2).

    The wrapper sits "right before the DBMS" — exactly where the paper
    captures: application code submits whole business transactions
    (statement lists) through {!exec_txn}, and the wrapper records each
    transaction's Op-Delta before executing it.

    Two sinks, matching the Figure 3 / Table 4 experiments:
    - {b DB log}: the Op-Delta is inserted into a capture table in the
      {e same transaction} (transactional capture; chunked rows);
    - {b file log}: the Op-Delta is appended to a flat file (cheap,
      non-transactional — the paper's "if writing the Op-Delta log does
      not need to be transactional, using a file log could be
      attractive").

    When a view configuration is supplied, {!Self_maintain.requirement}
    decides per statement whether before images must be captured too
    (hybrid mode); the wrapper then reads the affected rows' before
    images ahead of executing the statement. *)

module Db = Dw_engine.Db
module Ast = Dw_sql.Ast

type sink =
  | To_db_table of string
  | To_file of string

type t

val create :
  ?views:Spj_view.t list ->
  ?replicas:bool ->        (* does the warehouse keep source replicas? default true *)
  ?capture_images:bool ->  (* force hybrid capture for every statement, default false *)
  Db.t ->
  sink:sink ->
  t
(** With [To_db_table] the capture table is created if missing.
    [capture_images:true] records before images for {e every} UPDATE and
    DELETE regardless of what {!Self_maintain.requirement} asks for — a
    chunked bootstrap ({!Dw_etl.Bootstrap}) needs full row images to turn
    statement deltas into last-write-wins upserts inside its watermark
    windows. *)

val captures_images : t -> bool
(** Whether this wrapper was created with [capture_images:true]. *)

exception Not_self_maintainable of string
(** Raised by {!exec_txn} when the view set cannot be maintained from
    captures at all (join views without replicas). *)

val exec_txn : t -> Ast.stmt list -> (Db.exec_result list, string) result
(** Run the statements as one source transaction, capturing its Op-Delta.
    On [Error] (bad statement) the transaction is aborted and nothing is
    captured. *)

val capture_units : statements:int -> image_rows:int -> float
(** Deterministic {e source-side} overhead estimate in abstract row-visit
    units: recording one statement costs roughly one row write at the
    sink, plus one row read per hybrid before image — the Figure 3
    overhead the planner charges against this method. *)

val work_units : statements:int -> float
(** Deterministic {e extraction-side} work estimate in abstract row-visit
    units — the cost hook {!Dw_etl.Planner} calibrates and compares
    across methods: draining the capture log visits each recorded
    statement once, {e independent of how many rows each statement
    touched} (the paper's Section 4 headline). *)

val captured : t -> Op_delta.t list
(** All Op-Deltas captured through this wrapper, oldest first (in-memory
    mirror of the sink; survives sink truncation). *)

val captured_bytes : t -> int
(** Total {!Op_delta.size_bytes} captured — the paper's delta-volume
    metric (experiment V1). *)

val read_sink : t -> (Op_delta.t list, string) result
(** Decode the Op-Deltas back out of the sink (capture table or file) —
    what the transport layer ships to the warehouse. *)

val schema_for_images : t -> string -> Dw_relation.Schema.t option
(** Schema of a captured table (needed to decode hybrid before images). *)
