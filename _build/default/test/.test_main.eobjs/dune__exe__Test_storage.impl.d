test/test_storage.ml: Alcotest Array Bytes Dw_relation Dw_storage Dw_util Filename List Map Option Printf QCheck2 QCheck_alcotest Sys Unix
