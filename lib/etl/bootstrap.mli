(** Resumable watermark-based CDC bootstrap (DBLog-style, PAPERS.md):
    brings a fresh warehouse replica to a consistent snapshot of a live
    source table {e while the source keeps committing}, then hands the
    table off to the steady-state extraction pipeline.

    The paper assumes an offline full load precedes any of its delta
    extraction methods; this module removes that assumption.  The load
    proceeds in keyset-paginated chunks over the primary index.  Each
    chunk select is bracketed by low/high watermark frames
    ({!Dw_transport.Frame}) injected into the op-delta queue:

    - deltas drained {e before} the low watermark are applied by
      statement re-execution (normal incremental maintenance);
    - deltas {e between} the brackets are applied as last-write-wins row
      images (from forced hybrid before-image capture), and their keys
      recorded;
    - at the high watermark the chunk is upserted {e minus} the recorded
      keys — those rows' delta versions are newer than the chunk
      select's — together with the advanced chunk cursor, in one
      warehouse transaction.

    Crash safety: all progress (cursor, applied-through source txn id,
    lease) lives in the warehouse's [__bootstrap_state] table
    ({!Run_state}) and commits atomically with the data it describes, so
    after a kill at {e any} write/fsync event the run resumes from its
    last durable chunk, re-doing at most one chunk of work.  Watermark
    brackets carry a nonce drawn from the queue's persistent enqueue
    counter; brackets orphaned by a crash are recognized as stale and
    skipped.  An [is_running] lease (expiry on the metrics registry
    clock) makes overlapping runs impossible; a second {!start} while
    the lease is live returns [Lease_held].  Transient VFS faults are
    retried with jittered exponential backoff; past the budget the run
    aborts cleanly, leaving the table marked bootstrapping. *)

module Db = Dw_engine.Db

type config = {
  chunk_max : int;          (** AIMD chunk-size ceiling (and start value) *)
  chunk_min : int;          (** AIMD floor *)
  lock_wait_p95_s : float;  (** valve threshold on the warehouse [lock.wait] p95 *)
  lease_ttl_s : float;      (** lease lifetime on the registry clock *)
  max_retries : int;        (** transient-fault retry budget per operation *)
  backoff_s : float;        (** base backoff, doubled per retry with equal jitter *)
  seed : int;               (** PRNG seed (run ids, backoff jitter) *)
}

val default_config : config
(** [{ chunk_max = 256; chunk_min = 16; lock_wait_p95_s = 0.010;
      lease_ttl_s = 30.0; max_retries = 8; backoff_s = 0.0; seed = 7 }]. *)

type phase =
  | Before_chunk of int  (** chunk [i] is about to start *)
  | Window_open of int   (** low watermark enqueued; select not yet run *)
  | After_select of int  (** chunk rows selected; high watermark not yet enqueued *)
  | Chunk_done of int    (** chunk [i] durably applied *)
  | Catch_up             (** chunks exhausted; draining remaining deltas *)
  | Before_swap          (** about to mark Complete and hand off *)
(** Observation points surfaced to the [hook] callback — experiments use
    them to inject concurrent source commits at controlled positions
    relative to the watermark window. *)

type progress = {
  chunks_done : int;        (** cumulative, across resumes *)
  chunks_this_run : int;    (** chunk transactions applied by this run *)
  rows_loaded : int;        (** cumulative chunk rows applied (post-dedup) *)
  rows_deduped : int;       (** chunk rows dropped for window-touched keys, this run *)
  delta_txns_applied : int; (** delta transactions applied by this run *)
  resumed : bool;           (** this run continued an interrupted one *)
  complete : bool;          (** consistent snapshot reached and handed off *)
}

type error =
  | Lease_held of { owner : string; expiry : float }
      (** another run's lease is live; nothing was changed *)
  | Failed of string
      (** the run aborted (lease lost, retry budget exhausted, bad
          frame); state stays [Bootstrapping] and a later run resumes *)

type t

val start :
  ?config:config ->
  ?hook:(phase -> unit) ->
  ?restrict:(Dw_core.Op_delta.t -> Dw_core.Op_delta.t) ->
  ?owns:(int -> bool) ->
  owner:string ->
  source:Db.t ->
  capture:Dw_core.Opdelta_capture.t ->
  table:string ->
  queue:Dw_transport.Persistent_queue.t ->
  warehouse:Dw_warehouse.Warehouse.t ->
  watermark:Dw_core.Watermark.t ->
  unit ->
  (t, error) result
(** Acquire (or re-acquire after a crash) the bootstrap lease for
    [table] and return a runnable handle; [Lease_held] if a live lease
    belongs to a different [owner].  The capture must have been created
    with [~capture_images:true] ({!Dw_core.Opdelta_capture.create}), the
    replica table must already exist in the warehouse, and its primary
    key must be a single INT column.  A [Bootstrapping] state row from a
    crashed run resumes from its durable cursor; a [Complete] row makes
    the subsequent {!run} a no-op (plus the idempotent handoff).

    [restrict] and [owns] carve a {e slice} bootstrap out of the full
    one — how {!Rebuild} reloads a single partition of a partitioned
    fleet.  [restrict] maps every replayed delta transaction to the
    subset of its ops the target owns (it must preserve [txn_id], so
    the exactly-once mark still advances over fully-foreign
    transactions); [owns] filters chunk rows by primary key (the keyset
    cursor still steps over foreign keys, they are just never loaded).
    The defaults keep everything. *)

val run : t -> (progress, error) result
(** Drive the state machine to completion: chunk cycles until the keyset
    is exhausted, catch-up until the delta queue is dry, then the final
    swap (state row [Complete] + lease release, then source-side
    watermark advance + cursor clear).  Raises nothing on transient
    faults below the retry budget; returns [Failed] after a clean abort;
    lets {!Dw_storage.Vfs.Fault.Crash} propagate (that is the simulated
    process kill). *)

val progress : t -> progress
(** Current counters (meaningful mid-run from hooks, or after {!run}). *)

val state : Db.t -> table:string -> Run_state.row option
(** Read a table's durable bootstrap state row from a warehouse
    database, if any run ever started. *)
