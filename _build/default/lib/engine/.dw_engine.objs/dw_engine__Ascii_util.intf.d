lib/engine/ascii_util.mli: Db Dw_relation Dw_storage
