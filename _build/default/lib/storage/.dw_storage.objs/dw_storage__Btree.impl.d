lib/storage/btree.ml: Array Dw_relation List Printf
