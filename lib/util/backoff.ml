type t = {
  base_s : float;
  max_s : float;
  sleep : float -> unit;
  prng : Prng.t;
}

let create ?(sleep = Unix.sleepf) ?(max_s = infinity) ~base_s ~seed () =
  if base_s < 0.0 then invalid_arg "Backoff.create: base_s < 0";
  if not (max_s > 0.0) then invalid_arg "Backoff.create: max_s <= 0";
  { base_s; max_s; sleep; prng = Prng.create ~seed }

let pause_s t ~attempt =
  if attempt < 0 then invalid_arg "Backoff.pause_s: attempt < 0";
  if t.base_s <= 0.0 then 0.0
  else begin
    let base = Float.min t.max_s (t.base_s *. (2.0 ** float_of_int attempt)) in
    (base /. 2.0) +. Prng.float t.prng (base /. 2.0)
  end

let wait t ~attempt =
  let pause = pause_s t ~attempt in
  if pause > 0.0 then t.sleep pause;
  pause
