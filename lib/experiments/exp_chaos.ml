(* W6 — fleet under a flapping shard: circuit breakers, degraded reads,
   online rebuild.

   The partitioned fleet (3 range shards over the PARTS workload) is
   refreshed round by round from a live source through Op-Delta capture
   while one shard's device runs a sustained crash-flap schedule
   (Vfs.Fault.Crash_flap).  The scenario walks the whole health state
   machine deterministically:

   - phase 1 (baseline): fault-free rounds, every shard applies;
   - phase 2 (flap + self-heal): the shard fail-stops once, consecutive
     failures trip its breaker, the fleet keeps refreshing the healthy
     shards and answering `Degraded reads; after the dwell (on the
     fleet's Sim_clock) a half-open probe revives + reopens the shard,
     its cumulative bucket catches it up, the breaker closes;
   - phase 3 (terminal flap): the schedule turns permanently ON, the
     shard re-trips and every probe fails — degraded reads keep
     answering with an explicit coverage gap and growing staleness,
     `Fail_closed raises Unhealthy;
   - phase 4 (rebuild): Dw_etl.Rebuild bootstraps the quarantined
     shard's partition slice from the live source (source keeps
     committing mid-rebuild via the bootstrap hook) and re-admits it at
     a caught-up watermark;
   - phase 5 (converged): one more round brings every shard to the same
     watermark and the merged state must be byte-identical to a
     monolithic warehouse fed the same captured stream — and to the
     live source itself.

   Emitted metrics (the w6.* keys gated by Bench_check):
   - gauges  w6.identical, w6.converged_with_source, w6.trips,
             w6.probes, w6.probe_failures, w6.recovered, w6.rebuilds,
             w6.readmitted, w6.degraded_reads, w6.fleet_stalls,
             w6.fail_closed_raised, w6.staleness_txns, w6.recovery_s,
             w6.delta_txns, w6.rebuild_rows *)

module Vfs = Dw_storage.Vfs
module Fault = Vfs.Fault
module Db = Dw_engine.Db
module Tuple = Dw_relation.Tuple
module Metrics = Dw_util.Metrics
module Sim_clock = Dw_util.Sim_clock
module Breaker = Dw_util.Breaker
module Domain_pool = Dw_util.Domain_pool
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Opdelta_capture = Dw_core.Opdelta_capture
module Watermark = Dw_core.Watermark
module Table = Dw_engine.Table
module Warehouse = Dw_warehouse.Warehouse
module Partitioned = Dw_warehouse.Partitioned
module Stage = Dw_etl.Stage
module Bootstrap = Dw_etl.Bootstrap
module Rebuild = Dw_etl.Rebuild
module P = Exp_partition

let update_size = 4

(* shard [s]'s key slice under Exp_partition.range_spec's ceil-spaced
   bounds: [lo, hi) *)
let slice_bounds ~id_space ~parts s =
  let bound i = 1 + ((id_space * i) + parts - 1) / parts in
  let lo = if s = 0 then 1 else bound s in
  let hi = if s = parts - 1 then id_space + 1 else bound (s + 1) in
  (lo, hi)

type env = {
  src : Db.t;
  cap : Opdelta_capture.t;
  fleet : Partitioned.t;
  hm : Metrics.t;  (* fleet health registry, on [sim] *)
  sim : Sim_clock.t;
  spec : Dw_warehouse.Partition.t;
  parts : int;
  rows : int;
  id_space : int;
  seed : int;
  mutable round : int;  (* committed source rounds so far *)
}

(* one source round: an in-slice contiguous-range update per shard (so
   every shard's bucket is non-empty every round) plus a periodic small
   delete — all fact-table traffic, as the rebuild path requires *)
let commit_round env =
  let r = env.round in
  env.round <- r + 1;
  let exec stmts =
    match Opdelta_capture.exec_txn env.cap stmts with
    | Ok _ -> ()
    | Error e -> failwith ("w6: source commit failed: " ^ e)
  in
  for s = 0 to env.parts - 1 do
    let lo, hi = slice_bounds ~id_space:env.id_space ~parts:env.parts s in
    let span = max 1 (hi - lo - update_size) in
    let first_id = lo + (((r * 7) + (s * 13)) mod span) in
    exec [ Workload.update_parts_stmt ~first_id ~size:update_size ]
  done;
  if r mod 3 = 2 then begin
    let s = r / 3 mod env.parts in
    let lo, hi = slice_bounds ~id_space:env.id_space ~parts:env.parts s in
    let first_id = lo + ((r * 11) mod (max 1 (hi - lo - 2))) in
    exec [ Workload.delete_parts_stmt ~first_id ~size:2 ]
  end

let captured_ods env =
  match Opdelta_capture.read_sink env.cap with
  | Ok ods -> ods
  | Error e -> failwith ("w6: op-delta sink decode failed: " ^ e)

(* cumulative staged buckets: the per-shard watermark filter keeps
   redelivery exactly-once, and a shard coming back from quarantine or
   rebuild catches up from the same array *)
let staged env = fst (Stage.split ~spec:env.spec (captured_ods env))

let refresh_round env =
  let buckets = staged env in
  let outcome =
    Domain_pool.with_pool ~domains:env.parts (fun pool ->
        Partitioned.refresh_guarded ~pool env.fleet buckets)
  in
  Sim_clock.advance env.sim 10;
  outcome

let counter reg name =
  match List.assoc_opt name (Metrics.snapshot reg) with Some v -> v | None -> 0

let mk_env ?(health = Partitioned.default_health_config) ~rows ~parts ~seed () =
  let id_space = rows in
  let src = Db.create ~vfs:(Vfs.in_memory ()) ~name:"w6_src" () in
  let _ = Workload.create_parts_table src in
  (* pin the source calendar to day 0 so the loaded rows match the
     replica/reference load (load_rows generates at day 0) and the run
     does not depend on the wall clock *)
  Db.set_day src 0;
  Workload.load_parts ~seed src ~rows ();
  let cap =
    Opdelta_capture.create ~capture_images:true src ~sink:(Opdelta_capture.To_file "w6.oplog")
  in
  let hm = Metrics.create () in
  let sim = Sim_clock.create () in
  Metrics.use_sim_clock hm sim;
  let spec = P.range_spec ~id_space ~parts in
  let fleet =
    Partitioned.create ~pool_pages:64 ~health ~metrics:hm ~spec ~name:"w6" ()
  in
  Partitioned.add_replica fleet ~table:"parts" ~schema:Workload.parts_schema;
  Partitioned.load_replica fleet ~table:"parts" (P.load_rows ~rows ~seed);
  Partitioned.define_view fleet P.spj_view;
  Partitioned.define_agg_view fleet P.agg_view;
  (* the initial load is bulk-unlogged: checkpoint before any fault plan
     is armed, or a crash would lose pages recovery has no records for *)
  P.checkpoint_shards fleet;
  { src; cap; fleet; hm; sim; spec; parts; rows; id_space; seed; round = 0 }

(* a flap schedule that fires exactly once: the first durability event
   after arming crashes the shard, and the next ON phase is [period_off]
   events away — far beyond anything the scenario writes *)
let one_shot_flap =
  Fault.Crash_flap
    {
      window = { Fault.from_event = 0; until_event = max_int };
      period_on = 1;
      period_off = 100_000;
    }

(* permanently dead: every event is an ON phase, so revive-and-reopen
   probes crash again on their first recovery write *)
let terminal_flap =
  Fault.Crash_flap
    { window = { Fault.from_event = 0; until_event = max_int }; period_on = 1; period_off = 0 }

let sorted_source_rows db =
  let rows = ref [] in
  Table.scan (Db.table db Workload.parts_table) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

(* degraded-policy read of everything the fleet serves; returns
   (answered, skipped shard count, staleness in source txns) *)
let degraded_read env =
  match Partitioned.replica_rows_checked ~policy:`Degraded env.fleet "parts" with
  | exception Partitioned.Unhealthy _ -> (false, 0, 0)
  | rows, cov ->
    let _ = Partitioned.view_rows_checked ~policy:`Degraded env.fleet "big_qty" in
    let _ = Partitioned.agg_view_rows_checked ~policy:`Degraded env.fleet "qty_band_stats" in
    if rows = [] then failwith "w6: degraded read returned no rows";
    let stale =
      List.fold_left
        (fun acc (i, _) -> max acc (cov.Partitioned.max_watermark - cov.Partitioned.watermarks.(i)))
        0 cov.Partitioned.skipped
    in
    (true, List.length cov.Partitioned.skipped, stale)

let run_bench ~scale =
  Bench_support.section "W6: fleet under a flapping shard (breakers, degraded reads, rebuild)";
  let rows = Bench_support.scaled 600 ~scale in
  let parts = 3 in
  let flappy = 1 in
  let seed = 4242 in
  let health =
    {
      Partitioned.breaker =
        {
          Breaker.failure_threshold = 2;
          reset_timeout_s = 4.0;
          probe_successes = 1;
          max_reset_timeout_s = 64.0;
          seed = 29;
        };
      max_retries = 1;
      retry_backoff_s = 0.0;
      refresh_timeout_s = infinity;
    }
  in
  let env = mk_env ~health ~rows ~parts ~seed () in
  let vfss = Partitioned.vfss env.fleet in
  let breaker = Partitioned.shard_breaker env.fleet flappy in
  let degraded_rounds = ref 0 in
  let stalls = ref 0 in
  let staleness_max = ref 0 in
  let observe_reads () =
    let answered, skipped, stale = degraded_read env in
    if not answered then incr stalls;
    if skipped > 0 then incr degraded_rounds;
    staleness_max := max !staleness_max stale
  in
  let one_round () =
    commit_round env;
    let _ = refresh_round env in
    observe_reads ()
  in
  (* phase 1: two fault-free rounds *)
  one_round ();
  one_round ();
  if Partitioned.healths env.fleet <> Array.make parts Partitioned.Healthy then
    failwith "w6: fleet not healthy after fault-free rounds";
  (* phase 2: one-shot flap — trip, dwell, half-open probe, self-heal *)
  Vfs.set_fault vfss.(flappy) (Some (Fault.make ~sustained:[ one_shot_flap ] ~seed ()));
  let deadline = ref 10 in
  while
    not (Partitioned.shard_health env.fleet flappy = Partitioned.Healthy && Breaker.trips breaker >= 1)
    && !deadline > 0
  do
    decr deadline;
    one_round ()
  done;
  if !deadline = 0 then failwith "w6: flapped shard did not self-heal through a probe";
  let healed_trips = Breaker.trips breaker in
  if counter env.hm "health.recovered" < 1 then
    failwith "w6: probe heal not counted under health.recovered";
  (* phase 3: terminal flap — re-trip, probes keep failing *)
  Vfs.set_fault vfss.(flappy) (Some (Fault.make ~sustained:[ terminal_flap ] ~seed ()));
  let quarantined_at = ref (-1.0) in
  let deadline = ref 12 in
  while
    not
      (Partitioned.shard_health env.fleet flappy = Partitioned.Quarantined
      && counter env.hm "breaker.probe_failures" >= 1)
    && !deadline > 0
  do
    decr deadline;
    one_round ();
    if !quarantined_at < 0.0 && Partitioned.shard_health env.fleet flappy = Partitioned.Quarantined
    then quarantined_at := Metrics.now env.hm
  done;
  if !deadline = 0 then failwith "w6: terminal flap did not quarantine the shard";
  let fail_closed_raised =
    match Partitioned.replica_rows_checked ~policy:`Fail_closed env.fleet "parts" with
    | _ -> false
    | exception Partitioned.Unhealthy _ -> true
  in
  if not fail_closed_raised then failwith "w6: `Fail_closed read served around a quarantined shard";
  if !degraded_rounds < 1 then failwith "w6: no degraded read round observed";
  if !stalls > 0 then failwith "w6: a degraded read stalled (raised Unhealthy)";
  (* phase 4: rebuild the quarantined shard online from the live source *)
  let wm_store = Watermark.load (Db.vfs env.src) ~name:"w6.wm" in
  let hook = function
    | Bootstrap.Window_open 0 -> commit_round env (* live writes mid-rebuild *)
    | _ -> ()
  in
  let outcome =
    match
      Rebuild.rebuild_shard
        ~config:{ Bootstrap.default_config with chunk_max = 64; chunk_min = 8; seed }
        ~hook ~owner:"w6" ~source:env.src ~capture:env.cap ~watermark:wm_store ~fleet:env.fleet
        ~shard:flappy ()
    with
    | Ok o -> o
    | Error (Bootstrap.Lease_held _) -> failwith "w6: rebuild lease refused"
    | Error (Bootstrap.Failed e) -> failwith ("w6: rebuild failed: " ^ e)
  in
  if not outcome.Rebuild.progress.Bootstrap.complete then
    failwith "w6: rebuild bootstrap did not reach its consistent snapshot";
  if Partitioned.shard_health env.fleet flappy <> Partitioned.Healthy then
    failwith "w6: rebuilt shard not re-admitted as healthy";
  let recovery_s =
    if !quarantined_at < 0.0 then 0.0 else Metrics.now env.hm -. !quarantined_at
  in
  (* phase 5: one more round; every shard converges to the same watermark
     and the merged state matches the sequential integrator + the source *)
  commit_round env;
  let _ = refresh_round env in
  observe_reads ();
  if Partitioned.healths env.fleet <> Array.make parts Partitioned.Healthy then
    failwith "w6: fleet not fully healthy after rebuild";
  (* every shard must have applied through its own bucket's last
     transaction (the rebuilt shard may sit ahead: readmission pinned it
     at the fleet-wide capture watermark) *)
  let wms = Partitioned.watermarks env.fleet in
  let buckets = staged env in
  Array.iteri
    (fun i bucket ->
      let want = List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 bucket in
      if wms.(i) < want then
        failwith
          (Printf.sprintf "w6: shard %d watermark %d short of its bucket's last txn %d" i
             wms.(i) want))
    buckets;
  let ods = captured_ods env in
  let reference = P.mk_reference ~rows ~seed in
  ignore (Warehouse.integrate_op_deltas reference ods : Warehouse.stats);
  let identical = P.matches_reference (P.reference_state reference) env.fleet in
  let converged =
    sorted_source_rows env.src = Partitioned.replica_rows env.fleet "parts"
  in
  let m = Metrics.create () in
  let flag b = if b then 1.0 else 0.0 in
  let ctr name = float_of_int (counter env.hm name) in
  Metrics.set_gauge m "w6.identical" (flag identical);
  Metrics.set_gauge m "w6.converged_with_source" (flag converged);
  Metrics.set_gauge m "w6.trips" (ctr "breaker.trips");
  Metrics.set_gauge m "w6.probes" (ctr "breaker.probes");
  Metrics.set_gauge m "w6.probe_failures" (ctr "breaker.probe_failures");
  Metrics.set_gauge m "w6.recovered" (ctr "health.recovered");
  Metrics.set_gauge m "w6.rebuilds" (ctr "health.rebuilds");
  Metrics.set_gauge m "w6.readmitted" (ctr "health.readmitted");
  Metrics.set_gauge m "w6.degraded_reads" (float_of_int !degraded_rounds);
  Metrics.set_gauge m "w6.fleet_stalls" (float_of_int !stalls);
  Metrics.set_gauge m "w6.fail_closed_raised" (flag fail_closed_raised);
  Metrics.set_gauge m "w6.staleness_txns" (float_of_int !staleness_max);
  Metrics.set_gauge m "w6.recovery_s" recovery_s;
  Metrics.set_gauge m "w6.delta_txns" (float_of_int (List.length ods));
  Metrics.set_gauge m "w6.rebuild_rows"
    (float_of_int outcome.Rebuild.progress.Bootstrap.rows_loaded);
  Bench_support.print_table
    ~title:
      (Printf.sprintf
         "%d rows over %d range shards, shard %d flapping (breaker: trip at 2, dwell 4 s on \
          the fleet sim-clock)"
         rows parts flappy)
    ~header:
      [ "delta txns"; "trips"; "probes"; "probe fails"; "degraded reads"; "stalls";
        "max staleness"; "rebuild rows"; "recovery" ]
    ~rows:
      [
        [
          string_of_int (List.length ods);
          string_of_int (counter env.hm "breaker.trips");
          string_of_int (counter env.hm "breaker.probes");
          string_of_int (counter env.hm "breaker.probe_failures");
          string_of_int !degraded_rounds;
          string_of_int !stalls;
          string_of_int !staleness_max;
          string_of_int outcome.Rebuild.progress.Bootstrap.rows_loaded;
          Printf.sprintf "%.0f s (sim)" recovery_s;
        ];
      ];
  Printf.printf
    "flap -> trip #%d -> probe heal; terminal flap -> quarantine -> online slice rebuild \
     (%d rows, %d deduped) -> readmitted at txn %d\n\
     degraded reads answered every round (%d with a coverage gap, 0 stalls); healed fleet \
     %s the sequential integrator and %s the live source\n"
    healed_trips outcome.Rebuild.progress.Bootstrap.rows_loaded
    outcome.Rebuild.progress.Bootstrap.rows_deduped outcome.Rebuild.watermark !degraded_rounds
    (if identical then "is byte-identical to" else "DIVERGES from")
    (if converged then "converged with" else "DIVERGED from");
  if not (identical && converged) then failwith "w6: healed fleet diverged"

(* ---------- kill-during-rebuild explorer (the @crash alias's rebuild
   coverage) ---------- *)

type crash_spec = {
  r_rows : int;
  r_parts : int;
  r_seed : int;
}

let default_crash_spec = { r_rows = 48; r_parts = 3; r_seed = 23 }

(* deterministically drive shard [flappy] to Quarantined: arm a dead
   device and let two guarded rounds trip its breaker (threshold 2; the
   sim clock never advances, so the dwell never elapses and no probe
   races the rebuild) *)
let quarantined_scene spec =
  let { r_rows = rows; r_parts = parts; r_seed = seed } = spec in
  let health =
    {
      Partitioned.breaker =
        {
          Breaker.failure_threshold = 2;
          reset_timeout_s = 1000.0;
          probe_successes = 1;
          max_reset_timeout_s = 10_000.0;
          seed = 31;
        };
      max_retries = 0;
      retry_backoff_s = 0.0;
      refresh_timeout_s = infinity;
    }
  in
  let env = mk_env ~health ~rows ~parts ~seed () in
  let flappy = 1 in
  let guarded () =
    let buckets = staged env in
    Domain_pool.with_pool ~domains:parts (fun pool ->
        ignore
          (Partitioned.refresh_guarded ~pool env.fleet buckets
            : Warehouse.stats * Partitioned.shard_outcome array))
  in
  commit_round env;
  guarded ();
  commit_round env;
  guarded ();
  Vfs.set_fault (Partitioned.vfss env.fleet).(flappy)
    (Some (Fault.make ~sustained:[ terminal_flap ] ~seed ()));
  commit_round env;
  guarded ();
  guarded ();
  if Partitioned.shard_health env.fleet flappy <> Partitioned.Quarantined then
    failwith "rebuild explorer: scene did not quarantine the shard";
  (* one more committed round the quarantined shard has never seen, so
     the rebuild replays real foreign-and-owned delta traffic *)
  commit_round env;
  (env, flappy)

let rebuild_of ?hook env flappy =
  let wm = Watermark.load (Db.vfs env.src) ~name:"rebuild.wm" in
  Rebuild.rebuild_shard
    ~config:{ Bootstrap.default_config with chunk_max = 8; chunk_min = 4; seed = env.seed }
    ?hook ~owner:"explorer" ~source:env.src ~capture:env.cap ~watermark:wm ~fleet:env.fleet
    ~shard:flappy ()

let resume_of env flappy =
  let wm = Watermark.load (Db.vfs env.src) ~name:"rebuild.wm" in
  Rebuild.resume_shard
    ~config:{ Bootstrap.default_config with chunk_max = 8; chunk_min = 4; seed = env.seed }
    ~owner:"explorer" ~source:env.src ~capture:env.cap ~watermark:wm ~fleet:env.fleet
    ~shard:flappy ()

(* after readmission the fleet must converge: one guarded round, every
   shard caught up with its bucket, merged state = sequential reference *)
let verify_converged env =
  let buckets = staged env in
  Domain_pool.with_pool ~domains:env.parts (fun pool ->
      ignore
        (Partitioned.refresh_guarded ~pool env.fleet buckets
          : Warehouse.stats * Partitioned.shard_outcome array));
  if Partitioned.healths env.fleet <> Array.make env.parts Partitioned.Healthy then
    Error "fleet not healthy after readmission"
  else begin
    let wms = Partitioned.watermarks env.fleet in
    let short =
      Array.exists
        (fun i ->
          let want =
            List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 buckets.(i)
          in
          wms.(i) < want)
        (Array.init env.parts Fun.id)
    in
    if short then Error "a shard's watermark is short of its bucket after readmission"
    else begin
      let reference = P.mk_reference ~rows:env.rows ~seed:env.seed in
      ignore (Warehouse.integrate_op_deltas reference (captured_ods env) : Warehouse.stats);
      if P.matches_reference (P.reference_state reference) env.fleet then Ok ()
      else Error "merged state diverges from the sequential integrator"
    end
  end

(* fault-free rebuild with a counting-only plan armed on the fresh shard
   Vfs at the first chunk: its event total is the sweep space *)
let count_rebuild_events spec =
  let env, flappy = quarantined_scene spec in
  let armed = ref false in
  let hook = function
    | Bootstrap.Before_chunk 0 when not !armed ->
      armed := true;
      Vfs.set_fault (Partitioned.vfss env.fleet).(flappy) (Some (Fault.make ~seed:env.seed ()))
    | _ -> ()
  in
  (match rebuild_of ~hook env flappy with
   | Ok _ -> ()
   | Error _ -> failwith "rebuild explorer: fault-free rebuild failed");
  match Vfs.fault (Partitioned.vfss env.fleet).(flappy) with
  | Some f -> Fault.events f
  | None -> 0

(* kill the rebuild at event [k] of the fresh shard's device, resume it
   from the surviving bytes, and verify convergence *)
let run_rebuild_crash_point spec ~totals k =
  let env, flappy = quarantined_scene spec in
  let armed = ref false in
  let hook = function
    | Bootstrap.Before_chunk 0 when not !armed ->
      armed := true;
      Vfs.set_fault (Partitioned.vfss env.fleet).(flappy)
        (Some (Fault.make ~fail_stop_after:k ~seed:(env.seed + k) ()))
    | _ -> ()
  in
  let result =
    match rebuild_of ~hook env flappy with
    | Ok _ -> Error (Printf.sprintf "rebuild survived its fail-stop at event %d" k)
    | Error (Bootstrap.Lease_held _) -> Error "first rebuild refused its own lease"
    | Error (Bootstrap.Failed e) -> Error ("first rebuild aborted instead of crashing: " ^ e)
    | exception Fault.Crash _ -> (
      if Partitioned.shard_health env.fleet flappy <> Partitioned.Rebuilding then
        Error "crashed rebuild did not leave the shard Rebuilding"
      else
        match resume_of env flappy with
        | Ok o when o.Rebuild.progress.Bootstrap.complete -> verify_converged env
        | Ok _ -> Error "resumed rebuild did not reach its consistent snapshot"
        | Error (Bootstrap.Lease_held _) -> Error "resume refused its own expired lease"
        | Error (Bootstrap.Failed e) -> Error ("resume failed: " ^ e))
  in
  Crash_sim.accumulate totals (Partitioned.vfss env.fleet).(flappy);
  result

let explore_rebuild ?(spec = default_crash_spec) ?(stride = 1) () =
  let total_events = count_rebuild_events spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let points = Crash_sim.indices ~total:total_events ~stride in
  List.iter
    (fun k ->
      match run_rebuild_crash_point spec ~totals k with
      | Ok () -> ()
      | Error msg -> failures := (k, msg) :: !failures)
    points;
  {
    Crash_sim.total_events;
    explored = List.length points;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }
