(** Self-maintainability analysis (paper Section 4.1).

    Decides, per view and per operation kind, whether the warehouse can be
    refreshed from the Op-Delta alone, and when the Op-Delta must be
    augmented with the before images of the affected rows ("a hybrid
    between a partial value delta — the before image portion only — and
    the Op-Delta").

    The decisive factor is whether the warehouse keeps {e replicas} of the
    source tables (detail data):

    - with replicas, every operation is self-maintainable from the
      operation description alone — the warehouse re-runs the statement
      against its replica and derives all images locally;
    - without replicas, a select-project view needs the before images for
      deletes and updates (the statement's predicate identifies source
      rows the warehouse cannot see), while inserts remain self-
      maintainable since the INSERT statement carries the full tuple;
    - a join view is not self-maintainable without the other side's rows,
      no matter what is captured: replicas are required. *)

type op_kind = K_insert | K_update | K_delete

val kind_of_stmt : Dw_sql.Ast.stmt -> op_kind option
(** [None] for SELECT / CREATE TABLE. *)

type verdict = {
  self_maintainable : bool;
      (** can the warehouse refresh without contacting the source? *)
  needs_before_images : bool;
      (** when self-maintainable: must the capture ship before images? *)
  reason : string;
}

val analyze : Spj_view.t -> op_kind -> replicas:bool -> verdict

val requirement :
  views:Spj_view.t list -> replicas:bool -> Dw_sql.Ast.stmt ->
  [ `Op_only | `Op_with_before_images | `Not_self_maintainable of string ]
(** The capture requirement for one statement against a whole view set:
    the worst verdict over all views on the statement's table. *)
