(** FNV-1a content checksums for small persistent records.

    Every durable text/frame format in the repo (queue frames, watermark
    journal records) guards its payload with the same 32-bit FNV-1a hash:
    cheap, dependency-free, and good enough to reject torn or bit-flipped
    tails on recovery — these are crash-consistency checks, not
    cryptographic integrity. *)

val fnv1a : string -> int
(** 32-bit FNV-1a hash of the whole string, in [0, 0xffffffff]. *)

val hex : string -> string
(** [fnv1a] rendered as 8 lowercase hex digits, for text formats. *)
