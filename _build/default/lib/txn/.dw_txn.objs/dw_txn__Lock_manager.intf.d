lib/txn/lock_manager.mli: Dw_storage
