(* dwbench — command-line driver for the delta-extraction experiment
   suite (cmdliner interface over the same experiments bench/main.exe
   runs).

     dwbench run t1 t2 --scale 2
     dwbench list
     dwbench demo            # tiny end-to-end walkthrough on stdout *)

open Cmdliner
module E = Dw_experiments

let experiments =
  [
    ("t1", "Table 1: Export / Import / DBMS Loader vs delta size",
     fun ~scale -> E.Exp_dump_load.run ~scale);
    ("t2", "Table 2: timestamp extraction (file / table / table+Export)",
     fun ~scale -> ignore (E.Exp_timestamp.run_t2 ~scale));
    ("t3", "Table 3: end-to-end extract + transport + load",
     fun ~scale -> E.Exp_timestamp.run_t3 ~scale);
    ("f2", "Figure 2: trigger overhead vs transaction size",
     fun ~scale -> E.Exp_trigger.run ~scale);
    ("f2r", "Section 3.1.3: trigger capture to local vs external staging",
     fun ~scale -> E.Exp_trigger.run_remote ~scale);
    ("f3", "Figure 3: Op-Delta capture overhead vs transaction size",
     fun ~scale -> E.Exp_opdelta.run_f3 ~scale);
    ("t4", "Table 4: Op-Delta response time, DB log vs file log",
     fun ~scale -> E.Exp_opdelta.run_t4 ~scale);
    ("v1", "Section 4.1: delta volume, Op-Delta vs value delta",
     fun ~scale -> E.Exp_opdelta.run_v1 ~scale);
    ("w1", "Section 4.1: warehouse maintenance window",
     fun ~scale -> E.Exp_warehouse.run_w1 ~scale);
    ("w2", "Section 4.1: warehouse availability during maintenance",
     fun ~scale -> E.Exp_warehouse.run_w2 ~scale);
    ("w2r", "availability with real 2PL (effect-handler scheduler)",
     fun ~scale -> E.Exp_warehouse.run_w2_real ~scale);
    ("w3", "extension: maintenance window with an aggregate view",
     fun ~scale -> E.Exp_warehouse.run_w3 ~scale);
    ("s1", "Section 3.1.2: snapshot differential vs other methods",
     fun ~scale -> E.Exp_snapshot.run ~scale);
    ("r1", "Sections 2.2/4.1: replicated sources and reconciliation",
     fun ~scale -> E.Exp_reconcile.run ~scale);
    ("ablate", "ablations: plan mode, group commit, pool size, snapshot algorithms",
     fun ~scale -> E.Exp_ablation.run_all ~scale);
    ("crash", "robustness: crash-point sweep, faulty shipping, fault/retry counters",
     fun ~scale -> E.Crash_sim.run_bench ~scale);
    ("micro", "bechamel micro-benchmarks of engine primitives",
     fun ~scale:_ -> E.Micro.run ());
  ]

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr) experiments
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run selected experiments (or all)." in
  let ids =
    let all = List.map (fun (id, _, _) -> id) experiments in
    let doc = Printf.sprintf "Experiment ids (%s or 'all')." (String.concat ", " all) in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale factor (>= 1).")
  in
  let run scale ids =
    if scale < 1 then `Error (false, "--scale must be >= 1")
    else begin
      let want id = List.mem "all" ids || List.mem id ids in
      let unknown =
        List.filter
          (fun id -> id <> "all" && not (List.mem_assoc id (List.map (fun (i, d, _) -> (i, d)) experiments)))
          ids
      in
      match unknown with
      | u :: _ -> `Error (false, "unknown experiment " ^ u)
      | [] ->
        List.iter (fun (id, _, f) -> if want id then f ~scale) experiments;
        `Ok ()
    end
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ scale $ ids))

let demo_cmd =
  let doc = "A miniature end-to-end delta extraction walkthrough." in
  let run () =
    let module Vfs = Dw_storage.Vfs in
    let module Db = Dw_engine.Db in
    let module Workload = Dw_workload.Workload in
    let module Trigger_extract = Dw_core.Trigger_extract in
    let module Opdelta_capture = Dw_core.Opdelta_capture in
    let db = Db.create ~vfs:(Vfs.in_memory ()) ~name:"demo" () in
    let _ = Workload.create_parts_table db in
    Workload.load_parts db ~rows:100 ();
    let h = Trigger_extract.install db ~table:"parts" in
    let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "op.log") in
    (match Opdelta_capture.exec_txn cap [ Workload.update_parts_stmt ~first_id:1 ~size:50 ] with
     | Ok _ -> ()
     | Error e -> failwith e);
    let vd = Trigger_extract.collect db h in
    Printf.printf
      "updated 50 of 100 rows in one transaction:\n  value delta: %d images, %d bytes\n  \
       op-delta:    1 statement, %d bytes\n"
      (Dw_core.Delta.image_count vd)
      (Dw_core.Delta.size_bytes vd)
      (Opdelta_capture.captured_bytes cap)
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let () =
  let doc = "delta-extraction experiment suite (Ram & Do, ICDE 2000 reproduction)" in
  let info = Cmd.info "dwbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; demo_cmd ]))
