lib/util/metrics.ml: Format Hashtbl List String
