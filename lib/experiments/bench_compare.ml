module Json = Dw_util.Json
module Fmt_util = Dw_util.Fmt_util

type rule =
  | Flag
  | Near of float
  | Lower_better of float
  | Higher_better of float

(* Tolerance design: wall-clock windows/latencies vary wildly across CI
   runners, so they only fail on large regressions (and never on
   improvements); counter-derived ratios and the t7 work-unit scores are
   deterministic modulo intentional code change, so they get tight
   two-sided bands; invariant flags admit no drift at all. *)
let rules =
  [
    (* t5 — batching ablation: deterministic fsync/txn ratios and
       message counts, wall-clock refresh windows *)
    ("t5.fsync_per_txn_g1", Near 0.1);
    ("t5.fsync_per_txn_g4", Near 0.1);
    ("t5.fsync_per_txn_g16", Near 0.1);
    ("t5.queue_fsync_per_msg_single", Near 0.1);
    ("t5.queue_fsync_per_msg_batched", Near 0.1);
    ("t5.ship_blocks", Near 0.1);
    ("t5.ship_msgs", Near 0.1);
    ("t5.txns_sequential", Near 0.1);
    ("t5.txns_batched", Near 0.1);
    ("t5.window_sequential_s", Lower_better 3.0);
    ("t5.window_batched_s", Lower_better 3.0);
    (* w5 — domain-parallel OLAP: identity flag, wall-clock qps/p95 *)
    ("w5.identical", Flag);
    ("w5.partitions", Flag);
    ("w5.olap_qps_d1", Higher_better 0.75);
    ("w5.olap_qps_d4", Higher_better 0.75);
    ("w5.olap_p95_d1_s", Lower_better 3.0);
    ("w5.olap_p95_d4_s", Lower_better 3.0);
    ("w5.speedup_d4", Higher_better 0.6);
    (* t6 — partitioned refresh: identity flag, wall-clock windows *)
    ("t6.identical", Flag);
    ("t6.partitions", Flag);
    ("t6.window_p1_s", Lower_better 3.0);
    ("t6.window_p4_s", Lower_better 3.0);
    ("t6.speedup_p4", Higher_better 0.6);
    (* t7 — planner vs statics: everything is virtual-time work units,
       so the whole block is deterministic; bands only absorb intended
       cost-model retuning, not noise *)
    ("t7.identical", Flag);
    ("t7.statics_identical", Flag);
    ("t7.timestamp_diverged", Flag);
    ("t7.below_worst", Flag);
    ("t7.planner_units", Near 0.2);
    ("t7.best_static_units", Near 0.2);
    ("t7.worst_static_units", Near 0.2);
    ("t7.vs_best", Near 0.2);
    ("t7.switches", Near 0.5);
    ("t7.rounds", Near 0.25);
    ("t7.offered", Near 0.25);
    ("t7.admitted", Near 0.25);
    ("t7.shed", Near 0.5);
  ]

type verdict = Pass | Fail | Missing_baseline | Missing_candidate

type outcome = {
  key : string;
  rule : rule;
  base : float option;
  cand : float option;
  verdict : verdict;
}

type report = { outcomes : outcome list; compared : int; failures : int }

(* flatten one document's experiments into a gauge table *)
let gauges_of doc =
  match Json.member "experiments" doc with
  | None -> Error "missing \"experiments\""
  | Some exps -> (
      match Json.to_list exps with
      | None -> Error "\"experiments\" is not a list"
      | Some exps ->
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun e ->
            match Json.member "gauges" e with
            | Some (Json.Obj fields) ->
              List.iter
                (fun (name, v) ->
                  match Json.to_number v with
                  | Some x -> Hashtbl.replace tbl name x
                  | None -> ())
                fields
            | _ -> ())
          exps;
        Ok tbl)

let quick_of doc = match Json.member "quick" doc with Some (Json.Bool b) -> b | _ -> false

let eval ~tolerance rule base cand =
  let scaled t = t *. tolerance in
  let rel_above b limit = cand > b *. (1.0 +. limit) in
  let rel_below b limit = cand < b *. (1.0 -. limit) in
  match rule with
  | Flag -> if cand = base then Pass else Fail
  | Near t ->
    let denom = Float.max (Float.abs base) 1e-9 in
    if Float.abs (cand -. base) /. denom <= scaled t then Pass else Fail
  | Lower_better t -> if rel_above base (scaled t) then Fail else Pass
  | Higher_better t -> if rel_below base (scaled t) then Fail else Pass

let compare_docs ?(tolerance = 1.0) ~base ~cand () =
  if tolerance <= 0.0 || Float.is_nan tolerance then
    invalid_arg "Bench_compare.compare_docs: tolerance must be > 0";
  match gauges_of base, gauges_of cand with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("candidate: " ^ e)
  | Ok bt, Ok ct ->
    if quick_of base <> quick_of cand then
      Error
        (Printf.sprintf
           "mode mismatch: baseline is a %s run, candidate is a %s run - regenerate the \
            baseline in the same mode"
           (if quick_of base then "quick" else "full")
           (if quick_of cand then "quick" else "full"))
    else begin
      let outcomes =
        List.map
          (fun (key, rule) ->
            let base = Hashtbl.find_opt bt key in
            let cand = Hashtbl.find_opt ct key in
            let verdict =
              match base, cand with
              | None, _ -> Missing_baseline
              | Some _, None -> Missing_candidate
              | Some b, Some c -> eval ~tolerance rule b c
            in
            { key; rule; base; cand; verdict })
          rules
      in
      let count v = List.length (List.filter (fun o -> o.verdict = v) outcomes) in
      Ok
        {
          outcomes;
          compared = List.length outcomes - count Missing_baseline - count Missing_candidate;
          failures = count Fail + count Missing_candidate;
        }
    end

let rule_name = function
  | Flag -> "exact"
  | Near t -> Printf.sprintf "+-%.0f%%" (t *. 100.0)
  | Lower_better t -> Printf.sprintf "<= +%.0f%%" (t *. 100.0)
  | Higher_better t -> Printf.sprintf ">= -%.0f%%" (t *. 100.0)

let verdict_name = function
  | Pass -> "ok"
  | Fail -> "FAIL"
  | Missing_baseline -> "no baseline"
  | Missing_candidate -> "MISSING"

let render r =
  let num = function Some v -> Printf.sprintf "%.6g" v | None -> "-" in
  let change o =
    match o.base, o.cand with
    | Some b, Some c when Float.abs b > 1e-9 -> Printf.sprintf "%+.1f%%" ((c -. b) /. b *. 100.0)
    | _ -> "-"
  in
  let table =
    Fmt_util.table
      ~header:[ "gauge"; "baseline"; "candidate"; "change"; "band"; "verdict" ]
      ~rows:
        (List.map
           (fun o -> [ o.key; num o.base; num o.cand; change o; rule_name o.rule; verdict_name o.verdict ])
           r.outcomes)
  in
  Printf.sprintf "%s\nbench-compare: %d gauges compared, %d failure%s\n" table r.compared
    r.failures
    (if r.failures = 1 then "" else "s")
