(* Ablations of the design choices DESIGN.md calls out:

   A1  plan mode — the warehouse's keyed-statement execution (index) vs
       the paper's scan-bound source behaviour, on the value-delta
       integration path;
   A2  group commit — commit-time fsync policy on the on-disk Vfs
       backend;
   A3  buffer pool size — Import/Loader (Table 1) sensitivity to cache
       pressure;
   A4  snapshot-differential algorithm/parameter sweep. *)

module Vfs = Dw_storage.Vfs
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Trigger_extract = Dw_core.Trigger_extract
module Snapshot_diff = Dw_snapshot.Snapshot_diff
module Warehouse = Dw_warehouse.Warehouse
module Export_util = Dw_engine.Export_util
module Import_util = Dw_engine.Import_util
module Ascii_util = Dw_engine.Ascii_util
module Codec = Dw_relation.Codec
module Prng = Dw_util.Prng
open Bench_support

(* ---------- A1: plan mode at the warehouse ---------- *)

let run_a1 ~scale =
  section "A1 (ablation): warehouse plan mode for keyed value-delta statements";
  let table_rows = 10_000 * scale in
  let delta_rows = 500 in
  (* a delete delta: keyed DELETE statements at the warehouse *)
  let src = fresh_source ~rows:table_rows () in
  let handle = Trigger_extract.install src ~table:"parts" in
  Db.with_txn src (fun txn ->
      ignore (Db.exec src txn (Workload.delete_parts_stmt ~first_id:1 ~size:delta_rows)
              : Db.exec_result));
  let delta = Trigger_extract.collect src handle in
  let run mode =
    let wh = Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
    Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
    let rng = Prng.create ~seed:77 in
    Warehouse.load_replica wh ~table:"parts"
      (List.init table_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
    Db.set_plan_mode (Warehouse.db wh) mode;
    time_only (fun () -> ignore (Warehouse.integrate_value_delta wh delta : Warehouse.stats))
  in
  let t_scan = run `Scan_only in
  let t_index = run `Index_preferred in
  print_table
    ~title:
      (Printf.sprintf "%d keyed DELETE statements against a %d-row replica" delta_rows table_rows)
    ~header:[ "plan mode"; "integration time" ]
    ~rows:[ [ "Scan_only"; dur t_scan ]; [ "Index_preferred"; dur t_index ] ];
  Printf.printf
    "take-away: per-record value-delta statements are only viable with index resolution \
     (%.0fx); the Op-Delta comparison in W1 gives the value path this benefit\n"
    (t_scan /. t_index)

(* ---------- A2: group commit on real disk ---------- *)

let run_a2 ~scale =
  section "A2 (ablation): commit fsync policy (on-disk backend)";
  let txns = 200 * scale in
  let dir = Filename.temp_file "dwdelta" "" in
  Sys.remove dir;
  let run mode =
    let sub =
      Filename.concat dir
        (match mode with
         | `Every_commit -> "every"
         | `Group n -> "g" ^ string_of_int n
         | `Group_policy p -> Printf.sprintf "gp%d" p.Dw_txn.Group_commit.max_group)
    in
    let vfs = Vfs.on_disk sub in
    let db = Db.create ~pool_pages:512 ~vfs ~name:"src" () in
    let _ = Workload.create_parts_table db in
    Db.set_sync_mode db mode;
    let t =
      time_only (fun () ->
          for i = 1 to txns do
            Db.with_txn db (fun txn ->
                List.iter
                  (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result))
                  (Workload.insert_parts_txn ~first_id:i ~size:1 ~day:0 ()))
          done;
          Db.checkpoint db)
    in
    t
  in
  (match Sys.file_exists dir with false -> Unix.mkdir dir 0o755 | true -> ());
  let t_every = run `Every_commit in
  let t_group = run (`Group 64) in
  print_table
    ~title:(Printf.sprintf "%d single-row insert transactions, WAL on disk" txns)
    ~header:[ "sync mode"; "total time"; "per txn" ]
    ~rows:
      [
        [ "fsync every commit"; dur t_every; dur (t_every /. float_of_int txns) ];
        [ "group commit (64)"; dur t_group; dur (t_group /. float_of_int txns) ];
      ];
  Printf.printf "take-away: group commit amortises the per-commit fsync %.1fx\n"
    (t_every /. t_group)

(* ---------- A3: buffer pool size ---------- *)

let run_a3 ~scale =
  section "A3 (ablation): buffer-pool pressure on Import vs Loader";
  let rows = 20_000 * scale in
  let run pool_pages =
    let vfs = Vfs.in_memory () in
    let db = Db.create ~pool_pages ~vfs ~name:"src" () in
    let _ = Workload.create_parts_table db in
    Workload.load_parts db ~rows ();
    ignore (Export_util.export_table db ~table:"parts" ~dest:"d.exp" () : Export_util.stats);
    ignore (Ascii_util.dump db ~table:"parts" ~dest:"d.asc" () : Ascii_util.dump_stats);
    let _ = Db.create_table db ~name:"imp" ~ts_column:"last_modified" Workload.parts_schema in
    let t_import =
      time_only (fun () ->
          match Import_util.import_table db ~src:"d.exp" ~table:"imp" with
          | Ok _ -> ()
          | Error e -> failwith e)
    in
    let _ = Db.create_table db ~name:"ld" ~ts_column:"last_modified" Workload.parts_schema in
    let t_loader =
      time_only (fun () ->
          match Ascii_util.load db ~table:"ld" ~src:"d.asc" with
          | Ok _ -> ()
          | Error e -> failwith e)
    in
    (t_import, t_loader)
  in
  let rows_out =
    List.map
      (fun pages ->
        let t_import, t_loader = run pages in
        [ string_of_int pages; dur t_import; dur t_loader;
          Printf.sprintf "%.2fx" (t_import /. t_loader) ])
      [ 64; 256; 2048 ]
  in
  print_table
    ~title:(Printf.sprintf "Import vs Loader of %d rows under varying pool sizes (frames)" rows)
    ~header:[ "pool frames"; "Import"; "Loader"; "ratio" ]
    ~rows:rows_out;
  print_endline
    "take-away: the Import >> Loader gap of Table 1 is structural (statement processing + \
     double buffering), not a cache artefact"

(* ---------- A4: snapshot algorithm sweep ---------- *)

let run_a4 ~scale =
  section "A4 (ablation): snapshot differential algorithms and parameters";
  let rows = 20_000 * scale in
  let schema = Workload.parts_schema in
  let vfs = Vfs.in_memory () in
  let rng = Prng.create ~seed:5 in
  let old_rows = List.init rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0) in
  let new_rows =
    List.filter_map
      (fun t ->
        match t.(0) with
        | Dw_relation.Value.Int id when id mod 37 = 0 -> None  (* deletes *)
        | Dw_relation.Value.Int id when id mod 11 = 0 ->
          Some (Dw_relation.Tuple.set schema t "qty" (Dw_relation.Value.Int 0))  (* updates *)
        | _ -> Some t)
      old_rows
  in
  let write name rows =
    let file = Vfs.create vfs name in
    let buf = Buffer.create (1 lsl 20) in
    List.iter
      (fun r ->
        Buffer.add_string buf (Codec.encode_ascii schema r);
        Buffer.add_char buf '\n')
      rows;
    ignore (Vfs.append file (Buffer.to_bytes buf) : int);
    Vfs.close file
  in
  write "a4.old" old_rows;
  write "a4.new" new_rows;
  let sort_merge () =
    let entries, _ = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
    List.length entries
  in
  let partitioned buckets () =
    match Snapshot_diff.partitioned_hash ~buckets vfs schema ~old_file:"a4.old" ~new_file:"a4.new" with
    | Ok (entries, _) -> List.length entries
    | Error e -> failwith e
  in
  let windowed window_rows () =
    match Snapshot_diff.window ~window_rows vfs schema ~old_file:"a4.old" ~new_file:"a4.new" with
    | Ok (entries, _) -> List.length entries
    | Error e -> failwith e
  in
  let external_sorted run_rows () =
    match
      Snapshot_diff.external_sort_merge ~run_rows vfs schema ~old_file:"a4.old"
        ~new_file:"a4.new"
    with
    | Ok (entries, _) -> List.length entries
    | Error e -> failwith e
  in
  let cases =
    [
      ("sort-merge (in memory)", sort_merge);
      ("partitioned hash, 4 buckets", partitioned 4);
      ("partitioned hash, 16 buckets", partitioned 16);
      ("partitioned hash, 64 buckets", partitioned 64);
      ("window, 256 rows", windowed 256);
      ("window, 4096 rows", windowed 4096);
      ("external sort, 1024-row runs", external_sorted 1024);
    ]
  in
  let rows_out =
    List.map
      (fun (name, f) ->
        let entries = ref 0 in
        let t = time_only (fun () -> entries := f ()) in
        [ name; dur t; string_of_int !entries ])
      cases
  in
  print_table
    ~title:(Printf.sprintf "diff of two %d-row snapshots (~8%% changed)" rows)
    ~header:[ "algorithm"; "time"; "delta entries" ]
    ~rows:rows_out;
  print_endline
    "take-away: the window algorithm needs no scratch I/O and one pass; entry counts agree \
     across algorithms (window may add spurious pairs only when rows are displaced beyond the \
     window, which page-ordered dumps do not do)"

(* ---------- A5: differential-file compaction ---------- *)

let run_a5 ~scale =
  section "A5 (ablation): net-change compaction of a churn-heavy differential file";
  let table_rows = 5_000 * scale in
  (* a hot-spot workload: the same 200 ids updated over and over *)
  let db = fresh_source ~rows:table_rows () in
  let handle = Trigger_extract.install db ~table:"parts" in
  for round = 1 to 25 do
    Db.with_txn db (fun txn ->
        ignore
          (Db.exec db txn (Workload.update_parts_stmt ~first_id:(1 + (round mod 5)) ~size:200)
            : Db.exec_result))
  done;
  let delta = Trigger_extract.collect db handle in
  let compacted, t_compact = time (fun () -> Delta.compact delta) in
  let mk_wh () =
    let wh = Warehouse.create ~pool_pages:2048 ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
    Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
    let rng = Prng.create ~seed:77 in
    Warehouse.load_replica wh ~table:"parts"
      (List.init table_rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0));
    wh
  in
  let t_raw =
    best_of ~repeat:3 ~setup:mk_wh (fun wh ->
        ignore (Warehouse.integrate_value_delta wh delta : Warehouse.stats))
  in
  let t_compacted =
    best_of ~repeat:3 ~setup:mk_wh (fun wh ->
        ignore (Warehouse.integrate_value_delta wh compacted : Warehouse.stats))
  in
  print_table ~title:"25 update transactions over a 200-row hot spot"
    ~header:[ "differential file"; "changes"; "bytes"; "integration time" ]
    ~rows:
      [
        [ "raw"; string_of_int (Delta.row_count delta);
          string_of_int (Delta.size_bytes delta); dur t_raw ];
        [ "compacted"; string_of_int (Delta.row_count compacted);
          string_of_int (Delta.size_bytes compacted);
          Printf.sprintf "%s (+%s to compact)" (dur t_compacted) (dur t_compact) ];
      ];
  Printf.printf
    "take-away: net-change compaction shrinks hot-spot differential files ~%.0fx and the \
     integration window with them; it cannot help Op-Delta's delete/update sizes, which are \
     already O(1)\n"
    (float_of_int (Delta.row_count delta) /. float_of_int (max 1 (Delta.row_count compacted)))

let run_all ~scale =
  run_a1 ~scale;
  run_a2 ~scale;
  run_a3 ~scale;
  run_a4 ~scale;
  run_a5 ~scale
