module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Wal = Dw_txn.Wal
module Vfs = Dw_storage.Vfs
module Schema = Dw_relation.Schema
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Metrics = Dw_util.Metrics
module Prng = Dw_util.Prng
module Backoff = Dw_util.Backoff
module Ast = Dw_sql.Ast
module Op_delta = Dw_core.Op_delta
module Opdelta_capture = Dw_core.Opdelta_capture
module Watermark = Dw_core.Watermark
module Warehouse = Dw_warehouse.Warehouse
module Pq = Dw_transport.Persistent_queue
module Frame = Dw_transport.Frame

type config = {
  chunk_max : int;
  chunk_min : int;
  lock_wait_p95_s : float;
  lease_ttl_s : float;
  max_retries : int;
  backoff_s : float;
  seed : int;
}

let default_config =
  {
    chunk_max = 256;
    chunk_min = 16;
    lock_wait_p95_s = 0.010;
    lease_ttl_s = 30.0;
    max_retries = 8;
    backoff_s = 0.0;
    seed = 7;
  }

let validate_config c =
  if c.chunk_min < 1 then invalid_arg "Bootstrap: chunk_min < 1";
  if c.chunk_max < c.chunk_min then invalid_arg "Bootstrap: chunk_max < chunk_min";
  if not (c.lease_ttl_s > 0.0) then invalid_arg "Bootstrap: lease_ttl_s <= 0";
  if c.max_retries < 0 then invalid_arg "Bootstrap: max_retries < 0"

type phase =
  | Before_chunk of int
  | Window_open of int
  | After_select of int
  | Chunk_done of int
  | Catch_up
  | Before_swap

type progress = {
  chunks_done : int;
  chunks_this_run : int;
  rows_loaded : int;
  rows_deduped : int;
  delta_txns_applied : int;
  resumed : bool;
  complete : bool;
}

type error = Lease_held of { owner : string; expiry : float } | Failed of string

exception Lease_lost

type t = {
  cfg : config;
  hook : phase -> unit;
  owner : string;
  source : Db.t;
  capture : Opdelta_capture.t;
  table : string;
  schema : Schema.t;
  queue : Pq.t;
  wh : Warehouse.t;
  wh_db : Db.t;
  wm : Watermark.t;
  metrics : Metrics.t;
  rng : Prng.t;
  backoff : Backoff.t;
  restrict : Op_delta.t -> Op_delta.t;  (* delta slice filter (shard rebuild) *)
  owns : int -> bool;  (* chunk-row key ownership (shard rebuild) *)
  resumed : bool;
  mutable row : Run_state.row;  (* in-memory mirror of the durable state row *)
  mutable target : int;         (* AIMD chunk-size target *)
  mutable last_pumped : int;    (* highest source txn id enqueued *)
  mutable nonce : int;          (* this attempt's watermark-bracket nonce *)
  mutable window_touched : (int, unit) Hashtbl.t option;  (* Some = window open *)
  mutable chunk_rows : Dw_relation.Tuple.t list;
  mutable chunks_exhausted : bool;
  mutable chunks_this_run : int;
  mutable rows_deduped : int;
  mutable delta_txns_applied : int;
}

let schema_of_wh wh_db name = Option.map Table.schema (Db.table_opt wh_db name)

(* bounded retry with equal-jitter exponential backoff
   (Dw_util.Backoff) on transient VFS faults; [Fault.Crash] is never
   caught — that is the fail-stop the crash harness watches for.  The
   retried unit is always a whole warehouse transaction or queue
   operation, both of which roll back cleanly on the fault, so
   re-running is safe. *)
let with_retry t f =
  let rec attempt n =
    try f ()
    with Vfs.Fault.Transient _ when n < t.cfg.max_retries ->
      Metrics.incr t.metrics "bootstrap.retry";
      let pause = Backoff.wait t.backoff ~attempt:n in
      if pause > 0.0 then Metrics.observe t.metrics "bootstrap.backoff" pause;
      attempt (n + 1)
  in
  attempt 0

let journal t record =
  try Run_state.journal_append (Db.vfs t.wh_db) ~table:t.table record
  with Vfs.Fault.Transient _ -> ()  (* advisory: never fail the run over it *)

(* highest txn id already sitting in the queue: redelivered or
   not-yet-drained frames from before a crash must not be re-enqueued *)
let pending_max_txn ~wh_db queue =
  let n = Pq.pending queue in
  if n = 0 then 0
  else
    List.fold_left
      (fun acc payload ->
        match Frame.decode payload with
        | Ok (Frame.Data line) -> (
          match Op_delta.decode_line ~schema_of:(schema_of_wh wh_db) line with
          | Ok od -> max acc od.Op_delta.txn_id
          | Error _ -> acc)
        | Ok (Frame.Wm_low _ | Frame.Wm_high _) | Error _ -> acc)
      0 (Pq.peek_run queue ~max:n)

let start ?(config = default_config) ?(hook = fun (_ : phase) -> ())
    ?(restrict = fun (od : Op_delta.t) -> od) ?(owns = fun (_ : int) -> true) ~owner ~source
    ~capture ~table ~queue ~warehouse ~watermark () =
  validate_config config;
  if String.equal owner "" then invalid_arg "Bootstrap.start: empty owner";
  let wh_db = Warehouse.db warehouse in
  let metrics = Db.metrics wh_db in
  let schema =
    match Db.table_opt wh_db table with
    | Some tbl -> Table.schema tbl
    | None -> invalid_arg (Printf.sprintf "Bootstrap.start: warehouse has no replica %s" table)
  in
  if Schema.key_arity schema <> 1 || (Schema.column schema 0).Schema.ty <> Value.Tint then
    invalid_arg "Bootstrap.start: a single-column INT primary key is required";
  if not (Opdelta_capture.captures_images capture) then
    invalid_arg "Bootstrap.start: capture must force hybrid images (~capture_images:true)";
  let rng = Prng.create ~seed:config.seed in
  Run_state.ensure_table wh_db;
  let now = Metrics.now metrics in
  let decision =
    Db.with_txn wh_db (fun txn ->
        match Run_state.get wh_db txn ~table with
        | Some row
          when (not (String.equal row.Run_state.lease_owner ""))
               && (not (String.equal row.Run_state.lease_owner owner))
               && row.Run_state.lease_expiry > now
               && row.Run_state.state = Run_state.Bootstrapping ->
          `Held (row.Run_state.lease_owner, row.Run_state.lease_expiry)
        | Some row ->
          let resumed = row.Run_state.state = Run_state.Bootstrapping in
          let row =
            if resumed then
              { row with Run_state.lease_owner = owner;
                         lease_expiry = now +. config.lease_ttl_s }
            else row
          in
          if resumed then Run_state.put wh_db txn row;
          `Go (row, resumed)
        | None ->
          let row =
            {
              Run_state.table;
              run_id = Prng.alpha_string rng 8;
              state = Run_state.Bootstrapping;
              next_key = 0;
              chunks_done = 0;
              rows_loaded = 0;
              last_txn = 0;
              lease_owner = owner;
              lease_expiry = now +. config.lease_ttl_s;
            }
          in
          Run_state.put wh_db txn row;
          `Go (row, false))
  in
  match decision with
  | `Held (owner, expiry) -> Error (Lease_held { owner; expiry })
  | `Go (row, resumed) ->
    let t =
      {
        cfg = config;
        hook;
        owner;
        source;
        capture;
        table;
        schema;
        queue;
        wh = warehouse;
        wh_db;
        wm = watermark;
        metrics;
        rng;
        backoff = Backoff.create ~base_s:config.backoff_s ~seed:config.seed ();
        restrict;
        owns;
        resumed;
        row;
        target = config.chunk_max;
        last_pumped = max row.Run_state.last_txn (pending_max_txn ~wh_db queue);
        nonce = -1;
        window_touched = None;
        chunk_rows = [];
        chunks_exhausted = false;
        chunks_this_run = 0;
        rows_deduped = 0;
        delta_txns_applied = 0;
      }
    in
    if row.Run_state.state = Run_state.Bootstrapping then
      journal t
        (Printf.sprintf "%s|%s|%s|%d" (if resumed then "resume" else "start")
           row.Run_state.run_id owner row.Run_state.chunks_done);
    Ok t

let progress t =
  {
    chunks_done = t.row.Run_state.chunks_done;
    chunks_this_run = t.chunks_this_run;
    rows_loaded = t.row.Run_state.rows_loaded;
    rows_deduped = t.rows_deduped;
    delta_txns_applied = t.delta_txns_applied;
    resumed = t.resumed;
    complete = t.row.Run_state.state = Run_state.Complete;
  }

let renew_lease t =
  let now = Metrics.now t.metrics in
  let row =
    with_retry t (fun () ->
        Db.with_txn t.wh_db (fun txn ->
            match Run_state.get t.wh_db txn ~table:t.table with
            | Some row
              when String.equal row.Run_state.run_id t.row.Run_state.run_id
                   && String.equal row.Run_state.lease_owner t.owner ->
              let row = { row with Run_state.lease_expiry = now +. t.cfg.lease_ttl_s } in
              Run_state.put t.wh_db txn row;
              row
            | Some _ | None -> raise Lease_lost))
  in
  t.row <- row

let pump t =
  match Opdelta_capture.read_sink t.capture with
  | Error e -> failwith ("bootstrap: cannot read capture sink: " ^ e)
  | Ok ods ->
    let fresh = List.filter (fun od -> od.Op_delta.txn_id > t.last_pumped) ods in
    if fresh <> [] then begin
      let payloads =
        List.map
          (fun od ->
            Frame.encode (Frame.Data (Op_delta.encode_line ~schema_of:(schema_of_wh t.wh_db) od)))
          fresh
      in
      with_retry t (fun () -> Pq.enqueue_batch t.queue payloads);
      t.last_pumped <-
        List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) t.last_pumped fresh
    end

(* consistent keyset chunk: a snapshot read of the next [target] keys at
   or above the cursor, in key order (the select runs between the low and
   high watermark enqueues, which is what makes the window dedup sound) *)
let select_chunk t =
  let key_col = (Schema.column t.schema 0).Schema.name in
  let txn = Db.begin_txn ~mode:`Snapshot t.source in
  let rows =
    Db.select t.source txn t.table
      ~where:(Expr.Cmp (Expr.Ge, Expr.Col key_col, Expr.Lit (Value.Int t.row.Run_state.next_key)))
      ()
  in
  Db.commit t.source txn;
  let sorted = List.sort (fun a b -> Value.compare a.(0) b.(0)) rows in
  List.filteri (fun i _ -> i < t.target) sorted

let key_of tuple = match tuple.(0) with Value.Int k -> k | _ -> assert false

(* apply one delta transaction, marking [last_txn] in the same warehouse
   transaction (exactly-once under queue redelivery).  Inside an open
   window the transaction is applied as last-write-wins row images and
   its touched keys recorded for the chunk dedup; outside, plain
   statement re-execution. *)
let apply_delta t od =
  (* slice first (a shard rebuild keeps only the ops routed to its
     partition — the restriction preserves txn ids, so [last_txn] still
     advances over transactions whose every op belongs elsewhere) *)
  let od = t.restrict od in
  let od = { od with Op_delta.ops =
               List.filter
                 (fun (op : Op_delta.op) ->
                   String.equal (Ast.table_of op.Op_delta.stmt) t.table)
                 od.Op_delta.ops }
  in
  let txid = od.Op_delta.txn_id in
  let marked = ref t.row in
  let mark txn =
    let row = { t.row with Run_state.last_txn = txid } in
    Run_state.put t.wh_db txn row;
    marked := row
  in
  (match t.window_touched with
   | Some touched ->
     let keys = with_retry t (fun () -> Warehouse.integrate_op_delta_images t.wh ~table:t.table ~mark od) in
     List.iter (fun k -> Hashtbl.replace touched k ()) keys
   | None ->
     ignore (with_retry t (fun () -> Warehouse.integrate_op_delta_marked t.wh ~mark od)
             : Warehouse.stats));
  t.row <- !marked;
  t.delta_txns_applied <- t.delta_txns_applied + 1

(* close the window: upsert the chunk minus keys the window's deltas
   already wrote (their versions are newer than the chunk select's), and
   commit the advanced cursor in the same warehouse transaction *)
let apply_chunk t touched =
  let rows = t.chunk_rows in
  t.chunk_rows <- [];
  match rows with
  | [] -> t.chunks_exhausted <- true
  | rows ->
    let chunk_idx = t.row.Run_state.chunks_done in
    (* the cursor advances over every selected key — including keys a
       shard rebuild does not own, which must still be stepped past or
       the keyset scan would loop on them forever *)
    let max_key = List.fold_left (fun acc r -> max acc (key_of r)) min_int rows in
    let owned = List.filter (fun r -> t.owns (key_of r)) rows in
    let n_rows = List.length owned in
    let n_loaded =
      List.length (List.filter (fun r -> not (Hashtbl.mem touched (key_of r))) owned)
    in
    let marked = ref t.row in
    let mark txn =
      let row =
        { t.row with Run_state.next_key = max_key + 1;
                     chunks_done = t.row.Run_state.chunks_done + 1;
                     rows_loaded = t.row.Run_state.rows_loaded + n_loaded }
      in
      Run_state.put t.wh_db txn row;
      marked := row
    in
    let loaded =
      with_retry t (fun () ->
          Warehouse.load_chunk t.wh ~table:t.table
            ~skip:(fun k -> (not (t.owns k)) || Hashtbl.mem touched k)
            ~mark rows)
    in
    assert (loaded = n_loaded);
    t.row <- !marked;
    t.chunks_this_run <- t.chunks_this_run + 1;
    t.rows_deduped <- t.rows_deduped + (n_rows - n_loaded);
    Metrics.observe t.metrics "bootstrap.chunk_rows" (float_of_int n_loaded);
    Metrics.add t.metrics "bootstrap.rows_deduped" (n_rows - n_loaded);
    (* mirror the durable cursor into the source-side watermark store so
       source-side tooling can see bootstrap progress *)
    Watermark.set_cursor t.wm ~table:t.table
      { Watermark.next_key = t.row.Run_state.next_key;
        chunks_done = t.row.Run_state.chunks_done };
    journal t
      (Printf.sprintf "chunk|%s|%d|%d|%d" t.row.Run_state.run_id chunk_idx n_loaded
         t.row.Run_state.next_key);
    (* AIMD valve, same policy shape as the warehouse batch integrator:
       halve under reader lock pressure, creep back up otherwise *)
    let p95 = Metrics.percentile t.metrics "lock.wait" 0.95 in
    if p95 > t.cfg.lock_wait_p95_s then t.target <- max t.cfg.chunk_min (t.target / 2)
    else t.target <- min t.cfg.chunk_max (t.target + 1);
    Metrics.set_gauge t.metrics "bootstrap.chunk_target" (float_of_int t.target);
    t.hook (Chunk_done chunk_idx)

(* process the oldest queue frame; the ack only happens after the frame's
   effect (delta + mark, or chunk + cursor) has committed, so a crash
   between commit and ack redelivers a frame the [last_txn] filter or the
   nonce check then discards *)
let process_frame t payload =
  match Frame.decode payload with
  | Error _ ->
    Metrics.incr t.metrics "bootstrap.bad_frame";
    `Continue
  | Ok (Frame.Data line) -> (
    match Op_delta.decode_line ~schema_of:(schema_of_wh t.wh_db) line with
    | Error e -> failwith ("bootstrap: undecodable delta frame: " ^ e)
    | Ok od ->
      if od.Op_delta.txn_id > t.row.Run_state.last_txn then apply_delta t od;
      `Continue)
  | Ok (Frame.Wm_low { nonce; _ }) ->
    if nonce = t.nonce then t.window_touched <- Some (Hashtbl.create 32);
    `Continue
  | Ok (Frame.Wm_high { nonce; _ }) ->
    if nonce <> t.nonce then `Continue
    else begin
      let touched =
        match t.window_touched with Some h -> h | None -> (Hashtbl.create 0 : (int, unit) Hashtbl.t)
      in
      t.window_touched <- None;
      apply_chunk t touched;
      `Hw_done
    end

let drain_until_hw t =
  let rec go () =
    match Pq.peek t.queue with
    | None -> failwith "bootstrap: queue drained without reaching the high watermark"
    | Some payload -> (
      let verdict = process_frame t payload in
      with_retry t (fun () -> Pq.ack t.queue);
      match verdict with `Hw_done -> () | `Continue -> go ())
  in
  go ()

let drain_all t =
  let rec go () =
    match Pq.peek t.queue with
    | None -> ()
    | Some payload ->
      (match process_frame t payload with `Hw_done | `Continue -> ());
      with_retry t (fun () -> Pq.ack t.queue);
      go ()
  in
  go ()

let enqueue_bracket t frame = with_retry t (fun () -> Pq.enqueue t.queue (Frame.encode frame))

let chunk_cycle t =
  renew_lease t;
  pump t;
  let chunk = t.row.Run_state.chunks_done in
  t.hook (Before_chunk chunk);
  let nonce = Pq.enqueued_total t.queue in
  t.nonce <- nonce;
  let run = t.row.Run_state.run_id in
  enqueue_bracket t (Frame.Wm_low { run; chunk; nonce });
  t.hook (Window_open chunk);
  pump t;
  t.chunk_rows <- select_chunk t;
  t.hook (After_select chunk);
  pump t;
  enqueue_bracket t (Frame.Wm_high { run; chunk; nonce });
  drain_until_hw t

(* steady-state handoff: mark Complete + release the lease (one
   warehouse transaction), then point the source-side pipeline watermark
   past everything the bootstrap applied and drop the chunk cursor.
   Idempotent — a crash between the two halves redoes only the
   source-side half on resume. *)
let handoff t =
  let mark =
    { Watermark.day = Db.current_day t.source; lsn = Wal.next_lsn (Db.wal t.source) }
  in
  let cur = Watermark.get t.wm ~table:t.table in
  if mark.Watermark.day >= cur.Watermark.day && mark.Watermark.lsn >= cur.Watermark.lsn then
    Watermark.advance t.wm ~table:t.table mark;
  Watermark.clear_cursor t.wm ~table:t.table

let final_swap t =
  t.hook Before_swap;
  let row =
    { t.row with Run_state.state = Run_state.Complete; lease_owner = ""; lease_expiry = 0.0 }
  in
  with_retry t (fun () -> Db.with_txn t.wh_db (fun txn -> Run_state.put t.wh_db txn row));
  t.row <- row;
  journal t (Printf.sprintf "complete|%s|%d|%d" row.Run_state.run_id row.Run_state.chunks_done
               row.Run_state.rows_loaded);
  handoff t

let abort t reason =
  journal t (Printf.sprintf "abort|%s|%s" t.row.Run_state.run_id reason);
  (* best-effort lease release; the state row stays Bootstrapping so the
     table is visibly half-loaded and a later run resumes, never double
     runs.  Re-read under the transaction and release only a lease we
     still hold: an abort caused by losing the lease must not clobber
     the new owner's row (its cursor has moved past our stale copy) *)
  (try
     Db.with_txn t.wh_db (fun txn ->
         match Run_state.get t.wh_db txn ~table:t.row.Run_state.table with
         | Some row when String.equal row.Run_state.lease_owner t.owner ->
           let row = { row with Run_state.lease_owner = ""; lease_expiry = 0.0 } in
           Run_state.put t.wh_db txn row;
           t.row <- row
         | Some _ | None -> ())
   with Vfs.Fault.Transient _ -> ());
  Error (Failed reason)

let catch_up t =
  t.hook Catch_up;
  let rec go () =
    renew_lease t;
    pump t;
    if Pq.pending t.queue > 0 then begin
      drain_all t;
      go ()
    end
  in
  go ()

let run t =
  if t.row.Run_state.state = Run_state.Complete then begin
    (* re-entry after a crash between the state swap and the source-side
       handoff: redo the idempotent half *)
    handoff t;
    Ok (progress t)
  end
  else begin
    if not t.resumed then Watermark.clear_cursor t.wm ~table:t.table;
    match
      while not t.chunks_exhausted do
        chunk_cycle t
      done;
      catch_up t;
      final_swap t
    with
    | () -> Ok (progress t)
    | exception Vfs.Fault.Transient op ->
      abort t (Printf.sprintf "transient fault on %s persisted after %d retries" op
                 t.cfg.max_retries)
    | exception Lease_lost -> abort t "lease lost to a competing run"
    | exception Failure msg -> abort t msg
  end

let state db ~table =
  Db.with_txn db (fun txn -> Run_state.get db txn ~table)
