examples/nightly_etl.ml: Array Dw_core Dw_engine Dw_etl Dw_relation Dw_storage Dw_util Dw_warehouse Dw_workload List Printf String
