module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Vfs = Dw_storage.Vfs
module Domain_pool = Dw_util.Domain_pool
module Metrics = Dw_util.Metrics

type t = {
  spec : Partition.t;
  shards : Warehouse.t array;
  vfss : Vfs.t array;
}

let spec t = t.spec
let partitions t = Array.length t.shards
let shard t i = t.shards.(i)
let vfss t = t.vfss

(* ---------- per-shard refresh watermark ---------- *)

let progress_table = "__refresh_progress"

let progress_schema =
  Schema.make ~key_arity:1
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "applied"; ty = Value.Tint; nullable = false };
    ]

let init_progress db =
  ignore (Db.create_table db ~name:progress_table progress_schema : Table.t);
  Db.with_txn db (fun txn ->
      ignore (Db.insert db txn progress_table [| Value.Int 0; Value.Int 0 |]
               : Dw_storage.Heap_file.rid))

let read_progress db txn =
  match Db.select db txn progress_table () with
  | [ [| _; Value.Int applied |] ] -> applied
  | _ -> invalid_arg "Partitioned: corrupt __refresh_progress table"

let set_progress db txn applied =
  ignore
    (Db.update_where db txn progress_table
       ~set:[ ("applied", Expr.Lit (Value.Int applied)) ]
       ~where:None
      : int)

let watermark_of wh =
  let db = Warehouse.db wh in
  Db.with_txn db (fun txn -> read_progress db txn)

let watermarks t = Array.map watermark_of t.shards

(* ---------- construction ---------- *)

let create ?pool_pages ?pool_stripes ?(op_delay = 0.0) ~spec ~name () =
  let n = Partition.partitions spec in
  let vfss = Array.init n (fun _ -> Vfs.in_memory ~op_delay ()) in
  let shards =
    Array.init n (fun i ->
        let wh =
          Warehouse.create ?pool_pages ?pool_stripes ~vfs:vfss.(i)
            ~name:(Printf.sprintf "%s_p%d" name i) ()
        in
        Partition.save (Warehouse.db wh) ~shard:i spec;
        init_progress (Warehouse.db wh);
        wh)
  in
  { spec; shards; vfss }

let is_fact t table = String.equal table (Partition.table t.spec)

let add_replica t ~table ~schema =
  if is_fact t table then begin
    let key = Partition.key_column t.spec in
    if Schema.key_arity schema < 1 || (Schema.column schema 0).Schema.name <> key then
      invalid_arg
        (Printf.sprintf "Partitioned.add_replica: %s's leading key column must be %s" table
           key)
  end;
  Array.iter (fun wh -> Warehouse.add_replica wh ~table ~schema) t.shards

let load_replica t ~table rows =
  if is_fact t table then begin
    let schema =
      match Db.table_opt (Warehouse.db t.shards.(0)) table with
      | Some tbl -> Table.schema tbl
      | None -> invalid_arg (Printf.sprintf "Partitioned.load_replica: no replica %s" table)
    in
    let buckets = Array.make (partitions t) [] in
    List.iter
      (fun row ->
        let p = Partition.route_row t.spec schema row in
        buckets.(p) <- row :: buckets.(p))
      rows;
    Array.iteri
      (fun i bucket -> Warehouse.load_replica t.shards.(i) ~table (List.rev bucket))
      buckets
  end
  else Array.iter (fun wh -> Warehouse.load_replica wh ~table rows) t.shards

let define_view t view =
  (match view with
   | Spj_view.Select_project _ -> ()
   | Spj_view.Join _ ->
     invalid_arg
       "Partitioned.define_view: join views need co-partitioned sides; only select-project \
        views are supported");
  Array.iter (fun wh -> Warehouse.define_view wh view) t.shards

let define_agg_view t view = Array.iter (fun wh -> Warehouse.define_agg_view wh view) t.shards

(* ---------- merged reads ---------- *)

let replica_rows t table =
  let rows =
    if is_fact t table then
      Array.to_list t.shards |> List.concat_map (fun wh -> Warehouse.replica_rows wh table)
    else Warehouse.replica_rows t.shards.(0) table
  in
  List.sort Tuple.compare rows

(* sum multiplicities of identical output rows across shards (a base row
   lives on exactly one shard, but two shards' slices can project to the
   same view row) *)
let merge_counted rows_by_shard =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun (row, count) ->
         match Hashtbl.find_opt tbl row with
         | Some c -> Hashtbl.replace tbl row (c + count)
         | None ->
           Hashtbl.add tbl row count;
           order := row :: !order))
    rows_by_shard;
  List.rev_map (fun row -> (row, Hashtbl.find tbl row)) !order
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let view_rows t name =
  merge_counted (Array.to_list t.shards |> List.map (fun wh -> Warehouse.view_rows wh name))

let merge_agg_value fn a b =
  let add a b =
    match a, b with
    | Value.Int x, Value.Int y -> Value.Int (x + y)
    | Value.Float x, Value.Float y -> Value.Float (x +. y)
    | Value.Int x, Value.Float y | Value.Float y, Value.Int x ->
      Value.Float (float_of_int x +. y)
    | _ -> invalid_arg "Partitioned: non-numeric aggregate merge"
  in
  match fn with
  | Agg_view.Count | Agg_view.Sum _ -> add a b
  | Agg_view.Min _ -> if Value.compare a b <= 0 then a else b
  | Agg_view.Max _ -> if Value.compare a b >= 0 then a else b

let agg_view_rows t name =
  (* the definition is identical on every shard; take it from shard 0's
     registration to know group arity and aggregate functions *)
  let adef =
    match Warehouse.agg_view_def t.shards.(0) name with
    | Some v -> v
    | None -> raise Not_found
  in
  let groups = List.length adef.Agg_view.group_by in
  let fns = List.map snd adef.Agg_view.aggregates in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun wh ->
      List.iter
        (fun (row, count) ->
          let key = Array.sub row 0 groups in
          match Hashtbl.find_opt tbl key with
          | None ->
            Hashtbl.add tbl key (row, count);
            order := key :: !order
          | Some (existing, c) ->
            let merged = Array.copy existing in
            List.iteri
              (fun i fn ->
                merged.(groups + i) <- merge_agg_value fn existing.(groups + i) row.(groups + i))
              fns;
            Hashtbl.replace tbl key (merged, c + count))
        (Warehouse.agg_view_rows wh name))
    t.shards;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

(* ---------- parallel refresh ---------- *)

let take n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

(* one shard's valve-governed apply: the same AIMD loop as the monolithic
   integrate_op_deltas_batched, but reading this shard's own lock.wait
   p95 — backpressure on one partition leaves the others' run lengths
   alone *)
let refresh_shard policy wh ods =
  let db = Warehouse.db wh in
  let metrics = Db.metrics db in
  let wm = watermark_of wh in
  let pending = List.filter (fun od -> od.Op_delta.txn_id > wm) ods in
  let target = ref policy.Warehouse.max_batch in
  let rec go acc = function
    | [] -> acc
    | rest ->
      let run, rest = take !target rest in
      Metrics.observe metrics "warehouse.batch_size" (float_of_int (List.length run));
      let last =
        List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 run
      in
      let mark txn = set_progress db txn last in
      let acc = Warehouse.add_stats acc (Warehouse.integrate_op_delta_run_marked wh ~mark run) in
      let p95 = Metrics.percentile metrics "lock.wait" 0.95 in
      if p95 > policy.Warehouse.lock_wait_p95_s then
        target := max policy.Warehouse.min_batch (!target / 2)
      else target := min policy.Warehouse.max_batch (!target + 1);
      Metrics.set_gauge metrics "warehouse.batch_size_target" (float_of_int !target);
      go acc rest
  in
  go Warehouse.zero_stats pending

let refresh ?(policy = Warehouse.default_batch_policy) ~pool t buckets =
  Warehouse.validate_batch_policy policy;
  if Array.length buckets <> partitions t then
    invalid_arg
      (Printf.sprintf "Partitioned.refresh: %d buckets for %d partitions"
         (Array.length buckets) (partitions t));
  Domain_pool.run_all pool
    (List.init (partitions t) (fun i () -> refresh_shard policy t.shards.(i) buckets.(i)))
  |> List.fold_left Warehouse.add_stats Warehouse.zero_stats

(* ---------- crash re-adoption ---------- *)

let reopen ?pool_pages ?pool_stripes ~replicas ~views ~agg_views ~spec ~name ~vfss () =
  if Array.length vfss <> Partition.partitions spec then
    invalid_arg
      (Printf.sprintf "Partitioned.reopen: %d shard file systems for %d partitions"
         (Array.length vfss) (Partition.partitions spec));
  let catalog =
    List.map (fun (table, schema) -> (table, schema, None)) replicas
    @ List.map (fun v -> (Spj_view.name v, Warehouse.view_backing_schema v, None)) views
    @ List.map
        (fun (v : Agg_view.t) -> (v.Agg_view.name, Warehouse.agg_view_backing_schema v, None))
        agg_views
    @ [
        (Partition.spec_table, Partition.spec_schema, None);
        (progress_table, progress_schema, None);
      ]
  in
  let shards =
    Array.mapi
      (fun i vfs ->
        Vfs.crash_reset vfs;
        let db, (_ : Dw_txn.Recovery.stats) =
          Db.reopen ?pool_pages ?pool_stripes ~vfs ~name:(Printf.sprintf "%s_p%d" name i)
            ~tables:catalog ()
        in
        (match Partition.load db with
         | Some (shard, persisted) when shard = i && Partition.equal persisted spec -> ()
         | Some (shard, persisted) ->
           invalid_arg
             (Printf.sprintf
                "Partitioned.reopen: shard %d holds spec %s (shard %d), expected %s" i
                (Partition.to_string persisted) shard (Partition.to_string spec))
         | None ->
           invalid_arg (Printf.sprintf "Partitioned.reopen: shard %d has no persisted spec" i));
        let wh = Warehouse.attach ~db () in
        List.iter (fun (table, _) -> Warehouse.attach_replica wh ~table) replicas;
        List.iter (Warehouse.attach_view wh) views;
        List.iter (Warehouse.attach_agg_view wh) agg_views;
        wh)
      vfss
  in
  { spec; shards; vfss }
