lib/snapshot_diff/snapshot_diff.ml: Array Buffer Bytes Dw_relation Dw_storage Hashtbl List Map Printf String
