lib/engine/import_util.mli: Db
