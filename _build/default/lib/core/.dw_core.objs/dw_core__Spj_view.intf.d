lib/core/spj_view.mli: Dw_relation
