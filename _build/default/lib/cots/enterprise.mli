(** Simulated COTS-integrated enterprise (paper Section 2).

    One {e logical} table is replicated across [k] autonomous source
    databases.  Each source stores it under its own physical name with its
    own column names (heterogeneity); the integration layer (this module,
    standing in for the CORBA/DCE/DCOM glue) fans every {e business
    transaction} out to all replicas — each replica in its {e own local
    transaction}, so there is no global atomicity, exactly the
    "global serializability is often not enforced" situation the paper
    describes.

    Capture points:
    - the {b Op-Delta wrapper} sits at the business level and records each
      business transaction {e once}, against the logical schema — nothing
      to reconcile;
    - the {b trigger-based value-delta} extractors sit below, one per
      replica, and each sees its own copy of every change; their streams
      must be inverse-transformed to the logical schema and then
      reconciled ({!Dw_core.Reconcile}).  This asymmetry is experiment R1. *)

module Db = Dw_engine.Db
module Schema = Dw_relation.Schema
module Ast = Dw_sql.Ast
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Transform = Dw_core.Transform

type t

val create :
  ?heterogeneous:bool ->  (* distinct physical names per source, default true *)
  ?extra_tables:(string * Schema.t) list ->
  (* further logical tables replicated the same way; business transactions
     may span all logical tables (and Op-Delta keeps those cross-table
     transaction boundaries, which per-table value-delta streams lose) *)
  sources:int ->
  logical_table:string ->
  logical_schema:Schema.t ->
  unit ->
  t
(** Builds [sources] in-memory source databases, creates the physical
    replica tables in each, and installs the per-replica trigger capture. *)

val source_count : t -> int
val source_db : t -> int -> Db.t
val rule_to_physical : t -> int -> Transform.rule
(** The logical→physical transformation of source [i]. *)

val physical_table : t -> int -> string
val logical_schema : t -> Schema.t

val submit : t -> Ast.stmt list -> (unit, string) result
(** One business transaction, in the logical schema.  Statements must
    target the logical table.  Applied to every replica (local
    transactions); the Op-Delta wrapper records it once.  On a statement
    error the already-updated replicas keep their local commits — the
    non-atomicity is deliberate. *)

val business_op_deltas : t -> Op_delta.t list
(** The wrapper's capture: one Op-Delta per submitted business
    transaction, logical schema, in order. *)

val extract_replica_value_deltas : t -> Delta.t list
(** Trigger-extract each replica's delta table for the main logical
    table, inverse-transformed to the logical schema: [k] near-identical
    streams that the caller must reconcile. *)

val extract_replica_value_deltas_for : t -> table:string -> Delta.t list
(** Same for any logical table.  Raises [Not_found] for an unknown one.
    Note what is lost relative to {!business_op_deltas}: each stream is
    per-table, so a business transaction spanning tables arrives as
    disconnected fragments. *)

val logical_tables : t -> string list
