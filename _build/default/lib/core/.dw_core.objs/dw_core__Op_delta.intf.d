lib/core/op_delta.mli: Dw_relation Dw_sql Format
