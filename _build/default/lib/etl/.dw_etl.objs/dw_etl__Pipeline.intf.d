lib/etl/pipeline.mli: Dw_core Dw_engine Dw_warehouse
