(* Tests for Dw_core: delta model, Op-Delta codec, all four value-delta
   extractors (with the end-to-end soundness property: extracted delta
   applied to the old state reproduces the new state), Op-Delta capture,
   self-maintainability analysis, reconciliation, transformation rules. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Ast = Dw_sql.Ast
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Self_maintain = Dw_core.Self_maintain
module Timestamp_extract = Dw_core.Timestamp_extract
module Trigger_extract = Dw_core.Trigger_extract
module Log_extract = Dw_core.Log_extract
module Snapshot_extract = Dw_core.Snapshot_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Reconcile = Dw_core.Reconcile
module Transform = Dw_core.Transform
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let schema = Workload.parts_schema

let mk_source ?(rows = 50) ?(archive = true) () =
  let vfs = Vfs.in_memory () in
  let db = Db.create ~archive_log:archive ~vfs ~name:"src" () in
  let _ = Workload.create_parts_table db in
  if rows > 0 then Workload.load_parts db ~rows ();
  db

let table_rows db name =
  let rows = ref [] in
  Table.scan (Db.table db name) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let rows_equal a b =
  List.length a = List.length b && List.for_all2 Tuple.equal a b

let exec_ok db txn stmt = ignore (Db.exec db txn stmt : Db.exec_result)

(* a deterministic mixed workload applied through individual transactions *)
let run_mix db ~seed ~txns =
  let rng = Prng.create ~seed in
  let ops = Workload.gen_mix rng ~existing_ids:50 ~txns ~max_txn_size:8 in
  List.iter
    (fun op ->
      let stmts = Workload.op_to_stmts ~day:(Db.current_day db) op in
      Db.with_txn db (fun txn -> List.iter (exec_ok db txn) stmts))
    ops

(* ---------- delta model ---------- *)

let delta_sizes () =
  let t1 = Workload.gen_part (Prng.create ~seed:1) ~id:1 ~day:0 in
  let t2 = Workload.gen_part (Prng.create ~seed:1) ~id:2 ~day:0 in
  let d =
    Delta.make ~table:"parts" ~schema
      [ Delta.Insert t1; Delta.Update (t1, t2); Delta.Delete t2; Delta.Upsert t1 ]
  in
  check Alcotest.int "rows" 4 (Delta.row_count d);
  check Alcotest.int "images" 5 (Delta.image_count d);
  check Alcotest.int "bytes" 500 (Delta.size_bytes d)

let delta_apply_model () =
  let p i v = [| Value.Int i; Value.Str (Printf.sprintf "p%d" v); Value.Int v; Value.Float 0.0; Value.Date 0 |] in
  let old_rows = [ p 1 1; p 2 2 ] in
  let d =
    Delta.make ~table:"parts" ~schema
      [ Delta.Insert (p 3 3); Delta.Delete (p 1 1); Delta.Update (p 2 2, p 2 22); Delta.Upsert (p 4 4) ]
  in
  let result = Delta.apply_to_rows d old_rows in
  check Alcotest.int "count" 3 (List.length result);
  check Alcotest.bool "p2 updated" true
    (List.exists (fun r -> Tuple.equal r (p 2 22)) result);
  check Alcotest.bool "p1 gone" true
    (not (List.exists (fun r -> r.(0) = Value.Int 1) result))

let delta_compact_basics () =
  let p i v = [| Value.Int i; Value.Str "x"; Value.Int v; Value.Float 0.0; Value.Date 0 |] in
  let d =
    Delta.make ~table:"parts" ~schema
      [
        Delta.Insert (p 1 1);            (* 1: insert then update -> insert final *)
        Delta.Update (p 1 1, p 1 11);
        Delta.Insert (p 2 2);            (* 2: insert then delete -> nothing *)
        Delta.Delete (p 2 2);
        Delta.Update (p 3 3, p 3 33);    (* 3: update chain -> first before, last after *)
        Delta.Update (p 3 33, p 3 333);
        Delta.Delete (p 4 4);            (* 4: delete then insert -> update *)
        Delta.Insert (p 4 44);
        Delta.Delete (p 5 5);            (* 5: plain delete survives *)
      ]
  in
  let c = Delta.compact d in
  check Alcotest.int "five keys, one net each minus the cancelled" 4 (Delta.row_count c);
  let kind k =
    List.find_map
      (fun ch ->
        if Tuple.equal (Delta.change_key schema ch) [| Value.Int k |] then
          Some
            (match ch with
             | Delta.Insert a -> ("I", a)
             | Delta.Delete b -> ("D", b)
             | Delta.Update (_, a) -> ("U", a)
             | Delta.Upsert a -> ("S", a))
        else None)
      c.Delta.changes
  in
  (match kind 1 with
   | Some ("I", a) -> check Alcotest.bool "final image" true (a.(2) = Value.Int 11)
   | _ -> Alcotest.fail "key 1");
  check Alcotest.bool "key 2 cancelled" true (kind 2 = None);
  (match kind 3 with
   | Some ("U", a) -> check Alcotest.bool "net update" true (a.(2) = Value.Int 333)
   | _ -> Alcotest.fail "key 3");
  (match kind 4 with Some ("U", _) -> () | _ -> Alcotest.fail "key 4");
  match kind 5 with Some ("D", _) -> () | _ -> Alcotest.fail "key 5"

let prop_compact_equivalent =
  (* deltas extracted from real workloads are always consistent with the
     pre-workload state, so both the original and the compacted delta
     apply cleanly and must agree *)
  QCheck2.Test.make ~name:"compact delta applies identically" ~count:40
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let db = mk_source () in
      let before = table_rows db "parts" in
      let handle = Trigger_extract.install db ~table:"parts" in
      run_mix db ~seed ~txns:15;
      let delta = Trigger_extract.collect db handle in
      let compacted = Delta.compact delta in
      let a = List.sort Tuple.compare (Delta.apply_to_rows delta before) in
      let b = List.sort Tuple.compare (Delta.apply_to_rows compacted before) in
      Delta.row_count compacted <= Delta.row_count delta
      && List.length a = List.length b
      && List.for_all2 Tuple.equal a b)

let wal_prune_after_extraction () =
  let db = mk_source ~archive:true () in
  run_mix db ~seed:7 ~txns:5;
  Db.checkpoint db;
  (* second round: update/delete only (insert ids would collide with the
     first mix's) *)
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:8));
  Db.checkpoint db;
  let wal = Db.wal db in
  check Alcotest.bool "segments accumulated" true
    (List.length (Dw_txn.Wal.archived_segments wal) >= 2);
  (* extract everything, then reclaim what the watermark covers *)
  let _, _ = Log_extract.extract db ~table:"parts" () in
  let upto = Dw_txn.Wal.next_lsn wal in
  let pruned = Dw_txn.Wal.prune_archived wal ~upto in
  check Alcotest.bool "segments reclaimed" true (pruned >= 2);
  check Alcotest.int "none left" 0 (List.length (Dw_txn.Wal.archived_segments wal));
  (* the current segment still replays *)
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:3));
  let d, _ = Log_extract.extract ~since_lsn:upto db ~table:"parts" () in
  check Alcotest.int "fresh changes still extractable" 3 (Delta.row_count d)

let delta_wire_roundtrip_and_errors () =
  let rng = Prng.create ~seed:4 in
  let t1 = Workload.gen_part rng ~id:1 ~day:0 in
  let t2 = Workload.gen_part rng ~id:2 ~day:0 in
  let d =
    Delta.make ~table:"parts" ~schema
      [ Delta.Insert t1; Delta.Update (t1, t2); Delta.Delete t2; Delta.Upsert t1 ]
  in
  (match Delta.of_lines ~table:"parts" ~schema (Delta.to_lines d) with
   | Ok d' ->
     check Alcotest.int "same changes" (Delta.row_count d) (Delta.row_count d');
     check Alcotest.int "same images" (Delta.image_count d) (Delta.image_count d')
   | Error e -> Alcotest.fail e);
  (* error branches *)
  check Alcotest.bool "bad tag" true
    (Result.is_error (Delta.of_lines ~table:"t" ~schema [ "X|junk" ]));
  check Alcotest.bool "bad line" true
    (Result.is_error (Delta.of_lines ~table:"t" ~schema [ "?" ]));
  check Alcotest.bool "update missing after" true
    (Result.is_error
       (Delta.of_lines ~table:"t" ~schema
          [ "U|" ^ Dw_relation.Codec.encode_ascii schema t1 ]))

(* ---------- op-delta model ---------- *)

let opdelta_size_independent_of_txn_size () =
  let upd size = Workload.update_parts_stmt ~first_id:1 ~size in
  let od10 = Op_delta.make ~txn_id:1 [ upd 10 ] in
  let od10k = Op_delta.make ~txn_id:2 [ upd 10000 ] in
  let s10 = Op_delta.size_bytes od10 and s10k = Op_delta.size_bytes od10k in
  (* size differs only by the literal's digit count *)
  check Alcotest.bool "within a few bytes" true (abs (s10k - s10) <= 6);
  (* value delta for the same updates would be 2*size*100 bytes *)
  check Alcotest.bool "tiny vs value delta" true (s10k < 200)

let opdelta_wire_roundtrip () =
  let stmts =
    Workload.insert_parts_txn ~first_id:1000 ~size:3 ~day:42 ()
    @ [ Workload.update_parts_stmt ~first_id:1 ~size:5;
        Workload.delete_parts_stmt ~first_id:6 ~size:2 ]
  in
  let od = Op_delta.make ~txn_id:99 stmts in
  let line = Op_delta.encode_line od in
  match Op_delta.decode_line line with
  | Error e -> Alcotest.fail e
  | Ok od' ->
    check Alcotest.int "txn id" 99 od'.Op_delta.txn_id;
    check Alcotest.int "op count" (List.length stmts) (List.length od'.Op_delta.ops);
    List.iter2
      (fun s (op : Op_delta.op) -> check Alcotest.bool "stmt" true (Ast.equal s op.Op_delta.stmt))
      stmts od'.Op_delta.ops

let opdelta_wire_with_images () =
  let rng = Prng.create ~seed:5 in
  let images = [ Workload.gen_part rng ~id:1 ~day:3; Workload.gen_part rng ~id:2 ~day:3 ] in
  let od =
    Op_delta.with_before_images ~txn_id:7
      [ (Workload.delete_parts_stmt ~first_id:1 ~size:2, images) ]
  in
  let schema_of name = if name = "parts" then Some schema else None in
  let line = Op_delta.encode_line ~schema_of od in
  match Op_delta.decode_line ~schema_of line with
  | Error e -> Alcotest.fail e
  | Ok od' -> (
      match od'.Op_delta.ops with
      | [ op ] ->
        check Alcotest.int "images" 2 (List.length op.Op_delta.before_images);
        List.iter2
          (fun a b -> check Alcotest.bool "image" true (Tuple.equal a b))
          images op.Op_delta.before_images
      | _ -> Alcotest.fail "op shape");
  (* without schema resolution, decoding image lines fails *)
  check Alcotest.bool "needs schema" true (Result.is_error (Op_delta.decode_line line))

(* ---------- timestamp extraction ---------- *)

let ts_extract_finds_changes () =
  let db = mk_source () in
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 10);
  Db.with_txn db (fun txn ->
      exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:5);
      List.iter (exec_ok db txn) (Workload.insert_parts_txn ~first_id:100 ~size:3 ~day:0 ()));
  let delta, stats =
    Timestamp_extract.extract db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "delta.asc")
  in
  check Alcotest.int "8 changed rows" 8 (Delta.row_count delta);
  check Alcotest.int "scanned whole table" 53 stats.Timestamp_extract.scanned_rows;
  check Alcotest.bool "file written" true (stats.Timestamp_extract.bytes_out > 0);
  (* all changes are upserts *)
  List.iter
    (fun c ->
      match c with
      | Delta.Upsert _ -> ()
      | _ -> Alcotest.fail "timestamp extraction must produce upserts")
    delta.Delta.changes

let ts_extract_index_matches_scan () =
  let db = mk_source () in
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:10 ~size:7));
  let d_scan, _ =
    Timestamp_extract.extract ~via:`Scan db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "a.asc")
  in
  let d_idx, _ =
    Timestamp_extract.extract ~via:`Ts_index db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "b.asc")
  in
  check Alcotest.int "same rows" (Delta.row_count d_scan) (Delta.row_count d_idx)

let ts_extract_misses_deletes () =
  let db = mk_source () in
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.delete_parts_stmt ~first_id:1 ~size:5));
  let delta, _ =
    Timestamp_extract.extract db ~table:"parts" ~since:watermark
      ~output:(Timestamp_extract.To_file "c.asc")
  in
  (* the paper's criticism: deletes are invisible to the timestamp method *)
  check Alcotest.int "deletes invisible" 0 (Delta.row_count delta)

let ts_extract_table_output () =
  let db = mk_source () in
  let watermark = Db.current_day db in
  Db.set_day db (watermark + 1);
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:4));
  let _, stats =
    Timestamp_extract.extract db ~table:"parts" ~since:watermark
      ~output:
        (Timestamp_extract.To_table_export { delta_table = "parts_delta"; export_file = "d.exp" })
  in
  check Alcotest.int "delta table rows" 4 (Table.row_count (Db.table db "parts_delta"));
  check Alcotest.bool "export written" true (stats.Timestamp_extract.bytes_out > 0);
  (* captured last_modified values survived the copy *)
  Table.scan (Db.table db "parts_delta") (fun _ row ->
      check Alcotest.bool "stamp preserved" true
        (Tuple.get schema row "last_modified" = Value.Date (watermark + 1)))

(* ---------- trigger extraction ---------- *)

let trigger_extract_end_to_end () =
  let db = mk_source () in
  let before = table_rows db "parts" in
  let handle = Trigger_extract.install db ~table:"parts" in
  run_mix db ~seed:11 ~txns:20;
  let after = table_rows db "parts" in
  let delta = Trigger_extract.collect db handle in
  check Alcotest.bool "delta applies" true
    (rows_equal (List.sort Tuple.compare (Delta.apply_to_rows delta before)) after)

let trigger_extract_updates_paired () =
  let db = mk_source () in
  let handle = Trigger_extract.install db ~table:"parts" in
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:3));
  let delta = Trigger_extract.collect db handle in
  check Alcotest.int "3 updates" 3 (Delta.row_count delta);
  List.iter
    (function
      | Delta.Update (b, a) ->
        check Alcotest.bool "same key" true (Tuple.compare_key schema b a = 0)
      | _ -> Alcotest.fail "expected Update entries")
    delta.Delta.changes

let trigger_extract_drain () =
  let db = mk_source () in
  let handle = Trigger_extract.install db ~table:"parts" in
  run_mix db ~seed:3 ~txns:5;
  let d1 = Trigger_extract.collect ~drain:true db handle in
  check Alcotest.bool "captured something" true (Delta.row_count d1 > 0);
  let d2 = Trigger_extract.collect db handle in
  check Alcotest.int "drained" 0 (Delta.row_count d2);
  Trigger_extract.uninstall db handle;
  (* only update/delete ops: insert ids would collide with the first mix *)
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:3));
  let d3 = Trigger_extract.collect db handle in
  check Alcotest.int "uninstalled captures nothing" 0 (Delta.row_count d3)

(* ---------- log extraction ---------- *)

let log_extract_end_to_end () =
  let db = mk_source ~archive:true () in
  let before = table_rows db "parts" in
  let since = Dw_txn.Wal.next_lsn (Db.wal db) in
  run_mix db ~seed:21 ~txns:20;
  let after = table_rows db "parts" in
  let delta, stats = Log_extract.extract ~since_lsn:since db ~table:"parts" () in
  check Alcotest.bool "committed txns seen" true (stats.Log_extract.committed_txns > 0);
  check Alcotest.bool "delta applies" true
    (rows_equal (List.sort Tuple.compare (Delta.apply_to_rows delta before)) after)

let log_extract_skips_aborted () =
  let db = mk_source () in
  let since = Dw_txn.Wal.next_lsn (Db.wal db) in
  let txn = Db.begin_txn db in
  exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:5);
  Db.abort db txn;
  let delta, _ = Log_extract.extract ~since_lsn:since db ~table:"parts" () in
  (* the abort's compensation is excluded along with the aborted work *)
  check Alcotest.int "aborted invisible" 0 (Delta.row_count delta)

let log_extract_grouped_boundaries () =
  let db = mk_source () in
  let since = Dw_txn.Wal.next_lsn (Db.wal db) in
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.update_parts_stmt ~first_id:1 ~size:2));
  Db.with_txn db (fun txn -> exec_ok db txn (Workload.delete_parts_stmt ~first_id:10 ~size:3));
  let groups, _ = Log_extract.extract_grouped ~since_lsn:since db ~table:"parts" () in
  check Alcotest.int "two txns" 2 (List.length groups);
  (match groups with
   | [ (_, d1); (_, d2) ] ->
     check Alcotest.int "txn1 rows" 2 (Delta.row_count d1);
     check Alcotest.int "txn2 rows" 3 (Delta.row_count d2)
   | _ -> Alcotest.fail "group shape")

let log_ship_same_schema () =
  (* the initial load must be logged too: the bulk loader bypasses the WAL,
     so anything it loads would be invisible to log shipping *)
  let src = mk_source ~rows:0 ~archive:true () in
  Db.with_txn src (fun txn ->
      List.iter (exec_ok src txn) (Workload.insert_parts_txn ~first_id:1 ~size:30 ~day:0 ()));
  run_mix src ~seed:31 ~txns:10;
  (* destination: same engine, same schema, empty *)
  let dest_vfs = Vfs.in_memory () in
  let dest = Db.create ~vfs:dest_vfs ~name:"dw" () in
  let _ = Db.create_table dest ~name:"parts" ~ts_column:"last_modified" schema in
  (match Log_extract.ship ~src ~dest ~table:"parts" with
   | Ok n -> check Alcotest.bool "records applied" true (n > 0)
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "physically identical" true
    (rows_equal (table_rows src "parts") (table_rows dest "parts"))

let log_ship_rejects_schema_mismatch () =
  let src = mk_source ~rows:5 () in
  let dest = Db.create ~vfs:(Vfs.in_memory ()) ~name:"dw" () in
  let other =
    Schema.make
      [
        { Schema.name = "x"; ty = Value.Tint; nullable = false };
        { Schema.name = "y"; ty = Value.Tint; nullable = true };
      ]
  in
  let _ = Db.create_table dest ~name:"parts" other in
  check Alcotest.bool "rejected" true
    (Result.is_error (Log_extract.ship ~src ~dest ~table:"parts"))

(* ---------- snapshot extraction ---------- *)

let snapshot_extract_end_to_end () =
  let db = mk_source () in
  (* round 1: initial snapshot *)
  (match
     Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:None ~snapshot_dest:"s1.snap"
       ~algorithm:Snapshot_extract.Sort_merge
   with
   | Ok (d, _) -> check Alcotest.int "initial load delta" 50 (Delta.row_count d)
   | Error e -> Alcotest.fail e);
  let before = table_rows db "parts" in
  run_mix db ~seed:41 ~txns:15;
  let after = table_rows db "parts" in
  match
    Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "s1.snap")
      ~snapshot_dest:"s2.snap" ~algorithm:Snapshot_extract.Sort_merge
  with
  | Error e -> Alcotest.fail e
  | Ok (delta, _) ->
    check Alcotest.bool "delta applies" true
      (rows_equal (List.sort Tuple.compare (Delta.apply_to_rows delta before)) after)

let snapshot_partitioned_agrees () =
  let db = mk_source () in
  ignore
    (Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:None ~snapshot_dest:"p1.snap"
       ~algorithm:Snapshot_extract.Sort_merge);
  run_mix db ~seed:43 ~txns:10;
  let r1 =
    Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "p1.snap")
      ~snapshot_dest:"p2.snap" ~algorithm:Snapshot_extract.Sort_merge
  in
  let r2 =
    Snapshot_extract.extract db ~table:"parts" ~prev_snapshot:(Some "p1.snap")
      ~snapshot_dest:"p3.snap" ~algorithm:(Snapshot_extract.Partitioned_hash 4)
  in
  match r1, r2 with
  | Ok (d1, _), Ok (d2, s2) ->
    check Alcotest.int "same entries" (Delta.row_count d1) (Delta.row_count d2);
    check Alcotest.bool "scratch traffic" true (s2.Snapshot_extract.scratch_bytes > 0)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* ---------- op-delta capture ---------- *)

let capture_file_sink () =
  let db = mk_source () in
  let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "oplog") in
  (match
     Opdelta_capture.exec_txn cap (Workload.insert_parts_txn ~first_id:200 ~size:4 ~day:0 ())
   with
   | Ok results -> check Alcotest.int "4 results" 4 (List.length results)
   | Error e -> Alcotest.fail e);
  (match Opdelta_capture.exec_txn cap [ Workload.update_parts_stmt ~first_id:1 ~size:6 ] with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  check Alcotest.int "2 op-deltas" 2 (List.length (Opdelta_capture.captured cap));
  match Opdelta_capture.read_sink cap with
  | Ok ods ->
    check Alcotest.int "sink roundtrip" 2 (List.length ods);
    List.iter2
      (fun (a : Op_delta.t) (b : Op_delta.t) ->
        check Alcotest.int "same op count" (List.length a.Op_delta.ops)
          (List.length b.Op_delta.ops))
      (Opdelta_capture.captured cap) ods
  | Error e -> Alcotest.fail e

let capture_db_sink_roundtrip () =
  let db = mk_source () in
  let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_db_table "opdelta_log") in
  ignore (Opdelta_capture.exec_txn cap (Workload.insert_parts_txn ~first_id:300 ~size:2 ~day:0 ()));
  ignore (Opdelta_capture.exec_txn cap [ Workload.delete_parts_stmt ~first_id:1 ~size:3 ]);
  (* capture rows are transactional: they live in a table *)
  check Alcotest.bool "capture table populated" true
    (Table.row_count (Db.table db "opdelta_log") > 0);
  match Opdelta_capture.read_sink cap with
  | Ok ods -> check Alcotest.int "2 op-deltas" 2 (List.length ods)
  | Error e -> Alcotest.fail e

let capture_replay_reproduces_state () =
  let src = mk_source () in
  let cap = Opdelta_capture.create src ~sink:(Opdelta_capture.To_file "oplog") in
  let rng = Prng.create ~seed:55 in
  let ops = Workload.gen_mix rng ~existing_ids:50 ~txns:25 ~max_txn_size:6 in
  List.iter
    (fun op ->
      match Opdelta_capture.exec_txn cap (Workload.op_to_stmts ~day:0 op) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    ops;
  (* replay the captured op-deltas on a replica that had the same start *)
  let replica = mk_source () in
  List.iter
    (fun (od : Op_delta.t) ->
      Db.with_txn replica (fun txn ->
          List.iter (fun (op : Op_delta.op) -> exec_ok replica txn op.Op_delta.stmt) od.Op_delta.ops))
    (Opdelta_capture.captured cap);
  check Alcotest.bool "replica converges" true
    (rows_equal (table_rows src "parts") (table_rows replica "parts"))

let capture_aborted_not_captured () =
  let db = mk_source () in
  let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "oplog") in
  (* second statement references an unknown column -> txn aborts *)
  let bad =
    Ast.Update
      { table = "parts"; sets = [ ("nope", Expr.Lit (Value.Int 1)) ]; where = None }
  in
  (match Opdelta_capture.exec_txn cap [ Workload.update_parts_stmt ~first_id:1 ~size:2; bad ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error");
  check Alcotest.int "nothing captured" 0 (List.length (Opdelta_capture.captured cap));
  (* and the partial update rolled back: qty untouched *)
  let d, _ =
    Timestamp_extract.extract db ~table:"parts" ~since:(Db.current_day db - 1)
      ~output:(Timestamp_extract.To_file "t.asc")
  in
  ignore d

let capture_hybrid_before_images () =
  let db = mk_source () in
  let view =
    Spj_view.Select_project
      {
        name = "active_parts";
        table = "parts";
        schema;
        filter = Some (Expr.Cmp (Expr.Gt, Expr.Col "qty", Expr.Lit (Value.Int 0)));
        project =
          [ { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" } ];
      }
  in
  (* no replicas at the warehouse -> deletes/updates need before images *)
  let cap =
    Opdelta_capture.create ~views:[ view ] ~replicas:false db
      ~sink:(Opdelta_capture.To_file "oplog")
  in
  ignore (Opdelta_capture.exec_txn cap [ Workload.delete_parts_stmt ~first_id:1 ~size:4 ]);
  (match Opdelta_capture.captured cap with
   | [ od ] -> (
       match od.Op_delta.ops with
       | [ op ] -> check Alcotest.int "4 before images" 4 (List.length op.Op_delta.before_images)
       | _ -> Alcotest.fail "op shape")
   | _ -> Alcotest.fail "capture shape");
  (* inserts stay op-only *)
  ignore (Opdelta_capture.exec_txn cap (Workload.insert_parts_txn ~first_id:400 ~size:2 ~day:0 ()));
  match Opdelta_capture.captured cap with
  | [ _; od2 ] ->
    List.iter
      (fun (op : Op_delta.op) ->
        check Alcotest.int "no images on insert" 0 (List.length op.Op_delta.before_images))
      od2.Op_delta.ops
  | _ -> Alcotest.fail "capture shape 2"

let capture_rejects_join_without_replicas () =
  let db = mk_source () in
  let schema2 =
    Schema.make
      [
        { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
        { Schema.name = "supplier"; ty = Value.Tstring 20; nullable = false };
      ]
  in
  let _ = Db.create_table db ~name:"supply" schema2 in
  let join =
    Spj_view.Join
      {
        name = "parts_suppliers";
        left_table = "parts";
        left_schema = schema;
        right_table = "supply";
        right_schema = schema2;
        on = [ ("part_id", "part_id") ];
        left_filter = None;
        right_filter = None;
        project =
          [ { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" };
            { Spj_view.out_name = "supplier"; from_side = Spj_view.R; from_col = "supplier" } ];
      }
  in
  let cap =
    Opdelta_capture.create ~views:[ join ] ~replicas:false db
      ~sink:(Opdelta_capture.To_file "oplog")
  in
  try
    ignore (Opdelta_capture.exec_txn cap [ Workload.delete_parts_stmt ~first_id:1 ~size:1 ]);
    Alcotest.fail "expected Not_self_maintainable"
  with Opdelta_capture.Not_self_maintainable _ -> ()

(* ---------- self-maintainability analysis ---------- *)

let sm_verdicts () =
  let sp =
    Spj_view.Select_project
      { name = "v"; table = "parts"; schema; filter = None;
        project = [ { Spj_view.out_name = "part_id"; from_side = Spj_view.L; from_col = "part_id" } ] }
  in
  let v = Self_maintain.analyze sp Self_maintain.K_insert ~replicas:false in
  check Alcotest.bool "sp insert sm" true v.Self_maintain.self_maintainable;
  check Alcotest.bool "sp insert no images" false v.Self_maintain.needs_before_images;
  let v = Self_maintain.analyze sp Self_maintain.K_delete ~replicas:false in
  check Alcotest.bool "sp delete needs images" true v.Self_maintain.needs_before_images;
  let v = Self_maintain.analyze sp Self_maintain.K_update ~replicas:true in
  check Alcotest.bool "replicas make everything op-only" false v.Self_maintain.needs_before_images

let sm_requirement_worst_case () =
  let sp filter_col =
    Spj_view.Select_project
      { name = "v_" ^ filter_col; table = "parts"; schema; filter = None;
        project = [ { Spj_view.out_name = filter_col; from_side = Spj_view.L; from_col = filter_col } ] }
  in
  let views = [ sp "part_id"; sp "qty" ] in
  (match
     Self_maintain.requirement ~views ~replicas:false
       (Workload.update_parts_stmt ~first_id:1 ~size:1)
   with
   | `Op_with_before_images -> ()
   | `Op_only | `Not_self_maintainable _ -> Alcotest.fail "expected hybrid");
  match
    Self_maintain.requirement ~views ~replicas:false
      (List.hd (Workload.insert_parts_txn ~first_id:1 ~size:1 ~day:0 ()))
  with
  | `Op_only -> ()
  | `Op_with_before_images | `Not_self_maintainable _ -> Alcotest.fail "expected op-only"

(* ---------- reconciliation ---------- *)

let reconcile_drops_duplicates () =
  let rng = Prng.create ~seed:9 in
  let t1 = Workload.gen_part rng ~id:1 ~day:0 in
  let t2 = Workload.gen_part rng ~id:2 ~day:0 in
  let stream = [ Delta.Insert t1; Delta.Update (t1, t2) ] in
  let d () = Delta.make ~table:"parts" ~schema stream in
  let merged, stats = Reconcile.reconcile [ d (); d (); d () ] in
  check Alcotest.int "one authoritative stream" 2 (Delta.row_count merged);
  check Alcotest.int "duplicates" 4 stats.Reconcile.duplicates_dropped;
  check Alcotest.int "no conflicts" 0 stats.Reconcile.conflicts_resolved

let reconcile_priority_wins_conflicts () =
  let rng = Prng.create ~seed:10 in
  let t1 = Workload.gen_part rng ~id:1 ~day:0 in
  let t1' = Tuple.set schema t1 "qty" (Value.Int 42) in
  let d1 = Delta.make ~table:"parts" ~schema [ Delta.Insert t1 ] in
  let d2 = Delta.make ~table:"parts" ~schema [ Delta.Insert t1' ] in
  let merged, stats = Reconcile.reconcile [ d1; d2 ] in
  check Alcotest.int "conflicts counted" 1 stats.Reconcile.conflicts_resolved;
  (match merged.Delta.changes with
   | [ Delta.Insert winner ] ->
     check Alcotest.bool "priority stream wins" true (Tuple.equal winner t1)
   | _ -> Alcotest.fail "shape")

let reconcile_keeps_repeated_changes () =
  let rng = Prng.create ~seed:12 in
  let t1 = Workload.gen_part rng ~id:1 ~day:0 in
  let t1a = Tuple.set schema t1 "qty" (Value.Int 1) in
  let t1b = Tuple.set schema t1 "qty" (Value.Int 2) in
  (* the same key updated twice in one stream must stay two changes *)
  let stream = [ Delta.Update (t1, t1a); Delta.Update (t1a, t1b) ] in
  let d () = Delta.make ~table:"parts" ~schema stream in
  let merged, _ = Reconcile.reconcile [ d (); d () ] in
  check Alcotest.int "both updates kept" 2 (Delta.row_count merged)

(* ---------- transformation rules ---------- *)

let dw_schema =
  Schema.make
    [
      { Schema.name = "pid"; ty = Value.Tint; nullable = false };
      { Schema.name = "quantity"; ty = Value.Tint; nullable = false };
      { Schema.name = "source_system"; ty = Value.Tstring 8; nullable = false };
    ]

let rule =
  {
    Transform.src_table = "parts";
    dst_table = "dw_parts";
    column_map = [ ("part_id", "pid"); ("qty", "quantity") ];
    constants = [ ("source_system", Value.Str "boeing1") ];
  }

let transform_validate () =
  (match Transform.validate rule ~src:schema ~dst:dw_schema with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let bad = { rule with column_map = [ ("nope", "pid") ] } in
  check Alcotest.bool "bad source col" true
    (Result.is_error (Transform.validate bad ~src:schema ~dst:dw_schema))

let transform_tuple_and_delta () =
  let t = Workload.gen_part (Prng.create ~seed:2) ~id:7 ~day:0 in
  let out = Transform.apply_tuple rule ~src:schema ~dst:dw_schema t in
  check Alcotest.bool "pid" true (out.(0) = Value.Int 7);
  check Alcotest.bool "const" true (out.(2) = Value.Str "boeing1");
  let d = Delta.make ~table:"parts" ~schema [ Delta.Insert t ] in
  let d' = Transform.apply_delta rule ~src:schema ~dst:dw_schema d in
  check Alcotest.string "renamed table" "dw_parts" d'.Delta.table

let transform_stmt_rewrites () =
  (* update on a mapped column rewrites cleanly *)
  let upd =
    Ast.Update
      {
        table = "parts";
        sets = [ ("qty", Expr.Binop (Expr.Add, Expr.Col "qty", Expr.Lit (Value.Int 1))) ];
        where = Some (Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int 3)));
      }
  in
  (match Transform.apply_stmt rule ~src:schema upd with
   | Ok (Some (Ast.Update { table = "dw_parts"; sets = [ ("quantity", _) ]; where = Some w })) ->
     check Alcotest.string "where renamed" "pid = 3" (Expr.to_string w)
   | Ok _ -> Alcotest.fail "shape"
   | Error e -> Alcotest.fail e);
  (* where on a dropped column is an error *)
  let bad =
    Ast.Delete
      { table = "parts"; where = Some (Expr.Cmp (Expr.Gt, Expr.Col "price", Expr.Lit (Value.Float 1.0))) }
  in
  check Alcotest.bool "dropped column rejected" true
    (Result.is_error (Transform.apply_stmt rule ~src:schema bad));
  (* statements for other tables pass through as None *)
  match Transform.apply_stmt rule ~src:schema (Ast.Delete { table = "other"; where = None }) with
  | Ok None -> ()
  | Ok (Some _) | Error _ -> Alcotest.fail "expected None"

let transform_insert_projection () =
  let ins = List.hd (Workload.insert_parts_txn ~first_id:9 ~size:1 ~day:0 ()) in
  match Transform.apply_stmt rule ~src:schema ins with
  | Ok (Some (Ast.Insert { table = "dw_parts"; columns = Some cols; rows = [ row ] })) ->
    check (Alcotest.list Alcotest.string) "columns" [ "pid"; "quantity"; "source_system" ] cols;
    check Alcotest.int "row arity" 3 (List.length row);
    check Alcotest.bool "constant injected" true (List.nth row 2 = Value.Str "boeing1")
  | Ok _ -> Alcotest.fail "shape"
  | Error e -> Alcotest.fail e

(* property: every extractor's delta is sound on random workloads *)

let prop_extractors_sound =
  QCheck2.Test.make ~name:"trigger & log extraction sound on random workloads" ~count:30
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let db = mk_source () in
      let before = table_rows db "parts" in
      let since = Dw_txn.Wal.next_lsn (Db.wal db) in
      let handle = Trigger_extract.install db ~table:"parts" in
      run_mix db ~seed ~txns:12;
      let after = table_rows db "parts" in
      let trigger_delta = Trigger_extract.collect db handle in
      let log_delta, _ = Log_extract.extract ~since_lsn:since db ~table:"parts" () in
      (* the trigger delta also contains the capture-table writes?  no:
         trigger captures only parts changes; log extraction is filtered
         to the parts table *)
      rows_equal (List.sort Tuple.compare (Delta.apply_to_rows trigger_delta before)) after
      && rows_equal (List.sort Tuple.compare (Delta.apply_to_rows log_delta before)) after)

let suite =
  [
    test "delta sizes" delta_sizes;
    test "delta apply model" delta_apply_model;
    test "delta compact basics" delta_compact_basics;
    QCheck_alcotest.to_alcotest prop_compact_equivalent;
    test "wal prune after extraction" wal_prune_after_extraction;
    test "delta wire roundtrip and errors" delta_wire_roundtrip_and_errors;
    test "op-delta size independent of txn size" opdelta_size_independent_of_txn_size;
    test "op-delta wire roundtrip" opdelta_wire_roundtrip;
    test "op-delta wire with images" opdelta_wire_with_images;
    test "ts extract finds changes" ts_extract_finds_changes;
    test "ts extract index matches scan" ts_extract_index_matches_scan;
    test "ts extract misses deletes" ts_extract_misses_deletes;
    test "ts extract table output" ts_extract_table_output;
    test "trigger extract end to end" trigger_extract_end_to_end;
    test "trigger extract updates paired" trigger_extract_updates_paired;
    test "trigger extract drain" trigger_extract_drain;
    test "log extract end to end" log_extract_end_to_end;
    test "log extract skips aborted" log_extract_skips_aborted;
    test "log extract grouped boundaries" log_extract_grouped_boundaries;
    test "log ship same schema" log_ship_same_schema;
    test "log ship rejects schema mismatch" log_ship_rejects_schema_mismatch;
    test "snapshot extract end to end" snapshot_extract_end_to_end;
    test "snapshot partitioned agrees" snapshot_partitioned_agrees;
    test "capture file sink" capture_file_sink;
    test "capture db sink roundtrip" capture_db_sink_roundtrip;
    test "capture replay reproduces state" capture_replay_reproduces_state;
    test "capture aborted not captured" capture_aborted_not_captured;
    test "capture hybrid before images" capture_hybrid_before_images;
    test "capture rejects join without replicas" capture_rejects_join_without_replicas;
    test "self-maintain verdicts" sm_verdicts;
    test "self-maintain requirement worst case" sm_requirement_worst_case;
    test "reconcile drops duplicates" reconcile_drops_duplicates;
    test "reconcile priority wins conflicts" reconcile_priority_wins_conflicts;
    test "reconcile keeps repeated changes" reconcile_keeps_repeated_changes;
    test "transform validate" transform_validate;
    test "transform tuple and delta" transform_tuple_and_delta;
    test "transform stmt rewrites" transform_stmt_rewrites;
    test "transform insert projection" transform_insert_projection;
    QCheck_alcotest.to_alcotest prop_extractors_sound;
  ]
