(* Tests for Dw_txn: log record codec, WAL segments/archive, lock manager,
   recovery passes. *)

module Vfs = Dw_storage.Vfs
module Buffer_pool = Dw_storage.Buffer_pool
module Heap_file = Dw_storage.Heap_file
module Log_record = Dw_txn.Log_record
module Wal = Dw_txn.Wal
module Lock_manager = Dw_txn.Lock_manager
module Recovery = Dw_txn.Recovery
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Codec = Dw_relation.Codec

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let rid page slot = { Heap_file.page; slot }

(* ---------- log record codec ---------- *)

let sample_records =
  [
    { Log_record.tx = 1; body = Log_record.Begin };
    { Log_record.tx = 1; body = Log_record.Commit };
    { Log_record.tx = 2; body = Log_record.Abort };
    {
      Log_record.tx = 3;
      body = Log_record.Insert { table = "parts"; rid = rid 0 5; after = Bytes.of_string "abc" };
    };
    {
      Log_record.tx = 3;
      body = Log_record.Delete { table = "t"; rid = rid 9 1; before = Bytes.make 100 'z' };
    };
    {
      Log_record.tx = 4;
      body =
        Log_record.Update
          { table = "x"; rid = rid 2 2; before = Bytes.of_string "old"; after = Bytes.of_string "new" };
    };
    { Log_record.tx = 0; body = Log_record.Checkpoint [ 1; 2; 3 ] };
    { Log_record.tx = 0; body = Log_record.Checkpoint [] };
  ]

let record_equal (a : Log_record.t) (b : Log_record.t) =
  a.tx = b.tx
  &&
  match a.body, b.body with
  | Log_record.Begin, Log_record.Begin
  | Log_record.Commit, Log_record.Commit
  | Log_record.Abort, Log_record.Abort ->
    true
  | Log_record.Insert x, Log_record.Insert y ->
    x.table = y.table && x.rid = y.rid && Bytes.equal x.after y.after
  | Log_record.Delete x, Log_record.Delete y ->
    x.table = y.table && x.rid = y.rid && Bytes.equal x.before y.before
  | Log_record.Update x, Log_record.Update y ->
    x.table = y.table && x.rid = y.rid && Bytes.equal x.before y.before
    && Bytes.equal x.after y.after
  | Log_record.Checkpoint x, Log_record.Checkpoint y -> x = y
  | ( ( Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.Insert _
      | Log_record.Delete _ | Log_record.Update _ | Log_record.Checkpoint _ ),
      _ ) ->
    false

let log_record_roundtrip () =
  List.iter
    (fun record ->
      let encoded = Log_record.encode record in
      match Log_record.decode encoded ~off:0 with
      | Ok (decoded, next) ->
        check Alcotest.bool "roundtrip" true (record_equal record decoded);
        check Alcotest.int "consumed all" (Bytes.length encoded) next
      | Error e -> Alcotest.fail e)
    sample_records

let log_record_detects_corruption () =
  let encoded = Log_record.encode (List.nth sample_records 3) in
  (* flip a payload byte *)
  Bytes.set encoded 12 (Char.chr (Char.code (Bytes.get encoded 12) lxor 0xFF));
  check Alcotest.bool "corrupt rejected" true
    (Result.is_error (Log_record.decode encoded ~off:0))

let log_record_truncated () =
  let encoded = Log_record.encode (List.nth sample_records 3) in
  let torn = Bytes.sub encoded 0 (Bytes.length encoded - 2) in
  check Alcotest.bool "torn rejected" true (Result.is_error (Log_record.decode torn ~off:0))

(* ---------- wal ---------- *)

let wal_append_iter () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"test.wal" ~archive:false in
  let lsns = List.map (Wal.append wal) sample_records in
  Wal.flush wal;
  check Alcotest.bool "lsns increase" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < 7) lsns) (List.tl lsns));
  let got = ref [] in
  Wal.iter_all wal (fun _ r -> got := r :: !got);
  let got = List.rev !got in
  check Alcotest.int "all read back" (List.length sample_records) (List.length got);
  List.iter2
    (fun a b -> check Alcotest.bool "record" true (record_equal a b))
    sample_records got

let wal_iter_from () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"test.wal" ~archive:false in
  let lsns = List.map (Wal.append wal) sample_records in
  let from = List.nth lsns 4 in
  let count = ref 0 in
  Wal.iter_from wal from (fun lsn _ ->
      check Alcotest.bool "lsn filtered" true (lsn >= from);
      incr count);
  check Alcotest.int "tail records" 4 !count

let wal_archive_retains_segments () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"a.wal" ~archive:true in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Begin } : int);
  ignore (Wal.checkpoint wal ~active:[] : int);
  ignore (Wal.append wal { Log_record.tx = 2; body = Log_record.Begin } : int);
  ignore (Wal.checkpoint wal ~active:[] : int);
  check Alcotest.int "archived segments" 2 (List.length (Wal.archived_segments wal));
  (* archived records still replayable *)
  let begins = ref 0 in
  Wal.iter_all wal (fun _ r ->
      match r.Log_record.body with Log_record.Begin -> incr begins | _ -> ());
  check Alcotest.int "begins across segments" 2 !begins

let wal_no_archive_recycles () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"b.wal" ~archive:false in
  for i = 1 to 3 do
    ignore (Wal.append wal { Log_record.tx = i; body = Log_record.Begin } : int);
    ignore (Wal.checkpoint wal ~active:[] : int)
  done;
  (* only the checkpoint-holding segment plus current should remain *)
  check Alcotest.bool "segments recycled" true (List.length (Vfs.list_files vfs) <= 2)

let wal_survives_torn_tail () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"c.wal" ~archive:false in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Begin } : int);
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Commit } : int);
  Wal.flush wal;
  (* simulate a torn write: append garbage half-frame to the segment *)
  let seg = Vfs.open_existing vfs (List.hd (Vfs.list_files vfs)) in
  ignore (Vfs.append seg (Bytes.of_string "\x40\x00\x00\x00junk") : int);
  Vfs.close seg;
  let count = ref 0 in
  Wal.iter_all wal (fun _ _ -> incr count);
  check Alcotest.int "clean records only" 2 !count

(* regression: a torn tail must be *truncated* on re-open, not just
   skipped by the reader — otherwise a later append lands after the
   garbage and is unreachable forever *)
let wal_appends_after_torn_tail () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"d.wal" ~archive:false in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Begin } : int);
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Commit } : int);
  Wal.flush wal;
  let seg = Vfs.open_existing vfs (List.hd (Vfs.list_files vfs)) in
  ignore (Vfs.append seg (Bytes.of_string "\x40\x00\x00\x00junk") : int);
  Vfs.close seg;
  (* crash + restart: adoption truncates the torn tail... *)
  let wal2 = Wal.create vfs ~name:"d.wal" ~archive:false in
  check Alcotest.bool "torn tail truncated" true
    (Dw_util.Metrics.get (Vfs.metrics vfs) "wal.torn_segments" > 0);
  (* ...so post-recovery appends stay reachable across another restart *)
  ignore (Wal.append wal2 { Log_record.tx = 2; body = Log_record.Begin } : int);
  ignore (Wal.append wal2 { Log_record.tx = 2; body = Log_record.Commit } : int);
  Wal.flush wal2;
  let wal3 = Wal.create vfs ~name:"d.wal" ~archive:false in
  let count = ref 0 in
  Wal.iter_all wal3 (fun _ _ -> incr count);
  check Alcotest.int "old + new records all readable" 4 !count

(* regression: segment adoption used bare [int_of_string_opt], which also
   accepts "0x.."/"0o.."-prefixed, signed and '_'-separated forms — so a
   stray file like "e.wal.0x0000000001" was adopted as a segment on
   re-open, truncated as torn garbage, and shifted the recovered LSN.
   Only the fixed-width decimal names [segment_name] writes are valid. *)
let wal_ignores_stray_segment_names () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"e.wal" ~archive:false in
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Begin } : int);
  ignore (Wal.append wal { Log_record.tx = 1; body = Log_record.Commit } : int);
  Wal.flush wal;
  let lsn_before = Wal.next_lsn wal in
  let strays =
    [ "e.wal.0x0000000001"; "e.wal.+00000000001"; "e.wal.0_0000000001"; "e.wal.1" ]
  in
  List.iter
    (fun name ->
      let f = Vfs.create vfs name in
      ignore (Vfs.append f (Bytes.of_string "not a log segment") : int);
      Vfs.close f)
    strays;
  let wal2 = Wal.create vfs ~name:"e.wal" ~archive:false in
  check Alcotest.int "lsn unaffected by stray files" lsn_before (Wal.next_lsn wal2);
  check Alcotest.int "no stray file was 'repaired' as torn" 0
    (Dw_util.Metrics.get (Vfs.metrics vfs) "wal.torn_segments");
  let count = ref 0 in
  Wal.iter_all wal2 (fun _ _ -> incr count);
  check Alcotest.int "only real records iterate" 2 !count;
  (* the stray files were left alone, not truncated or deleted *)
  List.iter
    (fun name ->
      let f = Vfs.open_existing vfs name in
      check Alcotest.int (name ^ " untouched") 17 (Vfs.size f);
      Vfs.close f)
    strays

(* ---------- lock manager ---------- *)

let lm_shared_compatible () =
  let lm = Lock_manager.create () in
  check Alcotest.bool "t1 S" true (Lock_manager.acquire lm 1 (Lock_manager.Table "t") Lock_manager.S = Lock_manager.Granted);
  check Alcotest.bool "t2 S" true (Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.S = Lock_manager.Granted)

let lm_exclusive_conflicts () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm 1 (Lock_manager.Table "t") Lock_manager.X);
  (match Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.S with
   | Lock_manager.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "expected Blocked [1]");
  Lock_manager.release_all lm 1;
  check Alcotest.bool "granted after release" true
    (Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.S = Lock_manager.Granted)

let lm_upgrade () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm 1 (Lock_manager.Table "t") Lock_manager.S);
  check Alcotest.bool "self upgrade" true
    (Lock_manager.acquire lm 1 (Lock_manager.Table "t") Lock_manager.X = Lock_manager.Granted);
  (* now X is held: another S blocks *)
  check Alcotest.bool "other blocked" true
    (Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.S <> Lock_manager.Granted)

let lm_row_table_interaction () =
  let lm = Lock_manager.create () in
  let r = Lock_manager.Row ("t", rid 0 1) in
  ignore (Lock_manager.acquire lm 1 r Lock_manager.X);
  (* another txn's table S lock conflicts with the row X *)
  (match Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.S with
   | Lock_manager.Blocked l -> check (Alcotest.list Alcotest.int) "blockers" [ 1 ] l
   | _ -> Alcotest.fail "expected block");
  (* a row lock in a different table does not conflict *)
  check Alcotest.bool "other table ok" true
    (Lock_manager.acquire lm 2 (Lock_manager.Table "u") Lock_manager.X = Lock_manager.Granted);
  (* different rows both X fine *)
  check Alcotest.bool "different rows" true
    (Lock_manager.acquire lm 2 (Lock_manager.Row ("t", rid 0 2)) Lock_manager.X
     = Lock_manager.Granted)

let lm_deadlock_detection () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm 1 (Lock_manager.Table "a") Lock_manager.X);
  ignore (Lock_manager.acquire lm 2 (Lock_manager.Table "b") Lock_manager.X);
  (* 1 waits for b (held by 2) *)
  (match Lock_manager.acquire lm 1 (Lock_manager.Table "b") Lock_manager.X with
   | Lock_manager.Blocked _ -> ()
   | _ -> Alcotest.fail "expected block");
  (* 2 requesting a would close the cycle *)
  match Lock_manager.acquire lm 2 (Lock_manager.Table "a") Lock_manager.X with
  | Lock_manager.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

let lm_release_clears_waits () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm 1 (Lock_manager.Table "t") Lock_manager.X);
  ignore (Lock_manager.acquire lm 2 (Lock_manager.Table "t") Lock_manager.X);
  check Alcotest.bool "2 waiting" true (Lock_manager.waiting lm 2);
  Lock_manager.release_all lm 1;
  check Alcotest.bool "wait cleared" false (Lock_manager.waiting lm 2)

(* ---------- recovery ---------- *)

let rec_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint; nullable = false };
      { Schema.name = "v"; ty = Value.Tstring 20; nullable = true };
    ]

let encode t = Codec.encode_binary rec_schema t
let row id v = [| Value.Int id; Value.Str v |]

let recovery_redo_undo () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"r.wal" ~archive:false in
  let pool = Buffer_pool.create ~vfs ~capacity:8 () in
  let heap = Heap_file.create pool (Vfs.create vfs "t.heap") rec_schema in
  (* tx 1 commits an insert; tx 2 inserts but never commits; tx 3 commits a
     delete of tx1's row... build the log by hand *)
  let r0 = rid 0 0 and r1 = rid 0 1 in
  let log records = List.iter (fun r -> ignore (Wal.append wal r : int)) records in
  log
    [
      { Log_record.tx = 1; body = Log_record.Begin };
      { Log_record.tx = 1; body = Log_record.Insert { table = "t"; rid = r0; after = encode (row 1 "keep") } };
      { Log_record.tx = 1; body = Log_record.Commit };
      { Log_record.tx = 2; body = Log_record.Begin };
      { Log_record.tx = 2; body = Log_record.Insert { table = "t"; rid = r1; after = encode (row 2 "lose") } };
      (* crash: no commit for tx 2 *)
    ];
  (* simulate that tx2's dirty page reached disk before the crash *)
  Heap_file.force_at heap r1 (Some (encode (row 2 "lose")));
  let stats = Recovery.run ~wal ~resolve:(fun name -> if name = "t" then Some heap else None) in
  check Alcotest.int "winners" 1 stats.Recovery.winners;
  check Alcotest.int "losers" 1 stats.Recovery.losers;
  check Alcotest.bool "committed row present" true (Heap_file.exists_at heap r0);
  check Alcotest.bool "uncommitted row gone" false (Heap_file.exists_at heap r1)

let recovery_update_images () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"r2.wal" ~archive:false in
  let pool = Buffer_pool.create ~vfs ~capacity:8 () in
  let heap = Heap_file.create pool (Vfs.create vfs "t.heap") rec_schema in
  let r0 = rid 0 0 in
  let log records = List.iter (fun r -> ignore (Wal.append wal r : int)) records in
  log
    [
      { Log_record.tx = 1; body = Log_record.Begin };
      { Log_record.tx = 1; body = Log_record.Insert { table = "t"; rid = r0; after = encode (row 1 "v1") } };
      { Log_record.tx = 1; body = Log_record.Commit };
      { Log_record.tx = 2; body = Log_record.Begin };
      { Log_record.tx = 2;
        body = Log_record.Update { table = "t"; rid = r0; before = encode (row 1 "v1"); after = encode (row 1 "v2") } };
      (* tx 2 aborted explicitly but crash interrupted its rollback *)
      { Log_record.tx = 2; body = Log_record.Abort };
    ];
  Heap_file.force_at heap r0 (Some (encode (row 1 "v2")));
  ignore (Recovery.run ~wal ~resolve:(fun _ -> Some heap) : Recovery.stats);
  check Alcotest.bool "before image restored" true
    (Dw_relation.Tuple.equal (Heap_file.get heap r0) (row 1 "v1"))

let recovery_idempotent () =
  let vfs = Vfs.in_memory () in
  let wal = Wal.create vfs ~name:"r3.wal" ~archive:false in
  let pool = Buffer_pool.create ~vfs ~capacity:8 () in
  let heap = Heap_file.create pool (Vfs.create vfs "t.heap") rec_schema in
  let log records = List.iter (fun r -> ignore (Wal.append wal r : int)) records in
  log
    [
      { Log_record.tx = 1; body = Log_record.Begin };
      { Log_record.tx = 1; body = Log_record.Insert { table = "t"; rid = rid 0 0; after = encode (row 1 "x") } };
      { Log_record.tx = 1; body = Log_record.Commit };
    ];
  let resolve _ = Some heap in
  let s1 = Recovery.run ~wal ~resolve in
  let s2 = Recovery.run ~wal ~resolve in
  check Alcotest.int "same redone" s1.Recovery.redone s2.Recovery.redone;
  check Alcotest.int "single row" 1 (Heap_file.count heap)

let suite =
  [
    test "log record roundtrip" log_record_roundtrip;
    test "log record detects corruption" log_record_detects_corruption;
    test "log record truncated" log_record_truncated;
    test "wal append/iter" wal_append_iter;
    test "wal iter_from" wal_iter_from;
    test "wal archive retains segments" wal_archive_retains_segments;
    test "wal recycles without archive" wal_no_archive_recycles;
    test "wal survives torn tail" wal_survives_torn_tail;
    test "wal appends after torn tail" wal_appends_after_torn_tail;
    test "wal ignores stray segment names" wal_ignores_stray_segment_names;
    test "locks: shared compatible" lm_shared_compatible;
    test "locks: exclusive conflicts" lm_exclusive_conflicts;
    test "locks: upgrade" lm_upgrade;
    test "locks: row/table interaction" lm_row_table_interaction;
    test "locks: deadlock detection" lm_deadlock_detection;
    test "locks: release clears waits" lm_release_clears_waits;
    test "recovery redo/undo" recovery_redo_undo;
    test "recovery update images" recovery_update_images;
    test "recovery idempotent" recovery_idempotent;
  ]
