lib/core/reconcile.ml: Delta Dw_relation Hashtbl List Printf
