type column = { name : string; ty : Value.ty; nullable : bool }

type t = {
  cols : column array;
  key_arity : int;
  by_name : (string, int) Hashtbl.t;
  record_size : int;
}

let make ?(key_arity = 1) cols =
  let cols = Array.of_list cols in
  let n = Array.length cols in
  if n = 0 then invalid_arg "Schema.make: empty column list";
  if key_arity < 1 || key_arity > n then invalid_arg "Schema.make: bad key_arity";
  let by_name = Hashtbl.create n in
  Array.iteri
    (fun i c ->
      if c.name = "" then invalid_arg "Schema.make: empty column name";
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s" c.name);
      Hashtbl.add by_name c.name i)
    cols;
  let record_size =
    let bitmap = (n + 7) / 8 in
    Array.fold_left (fun acc c -> acc + Value.encoded_size c.ty) bitmap cols
  in
  { cols; key_arity; by_name; record_size }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let key_arity t = t.key_arity

let column t i =
  if i < 0 || i >= Array.length t.cols then invalid_arg "Schema.column: out of bounds";
  t.cols.(i)

let index_of_opt t name = Hashtbl.find_opt t.by_name name

let index_of t name =
  match index_of_opt t name with Some i -> i | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name
let record_size t = t.record_size

let equal a b =
  a.key_arity = b.key_arity
  && Array.length a.cols = Array.length b.cols
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty && x.nullable = y.nullable) a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>(";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s %s%s%s" c.name (Value.ty_to_string c.ty)
        (if c.nullable then "" else " NOT NULL")
        (if i < t.key_arity then " KEY" else ""))
    t.cols;
  Format.fprintf ppf ")@]"

let project t names =
  let cols = List.map (fun n -> t.cols.(index_of t n)) names in
  make ~key_arity:(List.length cols) cols
