module Vfs = Dw_storage.Vfs
module Metrics = Dw_util.Metrics
module Backoff = Dw_util.Backoff

type stats = { bytes : int; chunks : int; retries : int }

(* Retry a faultable operation with bounded equal-jitter exponential
   backoff (Dw_util.Backoff).  Chunk writes go through [Vfs.write_at]
   at a fixed offset, so re-running after a transient or torn write
   simply overwrites the partial data — the retry is idempotent. *)
let with_retry ~metrics ~max_retries ~backoff ~retries f =
  let rec attempt n =
    try f ()
    with Vfs.Fault.Transient _ when n < max_retries ->
      incr retries;
      Metrics.incr metrics "retry.ship";
      let pause = Backoff.wait backoff ~attempt:n in
      (* backoff time is where a flaky link actually hurts the
         maintenance window: record the distribution, not just a count *)
      if pause > 0.0 then Metrics.observe metrics "ship.backoff" pause;
      attempt (n + 1)
  in
  attempt 0

let ship ?(chunk_size = 64 * 1024) ?(max_retries = 8) ?(backoff_s = 0.0) ?(jitter_seed = 0) ~src
    ~src_name ~dst ~dst_name () =
  if chunk_size <= 0 then invalid_arg "File_ship.ship: chunk_size <= 0";
  if max_retries < 0 then invalid_arg "File_ship.ship: max_retries < 0";
  match Vfs.open_existing src src_name with
  | exception Not_found -> Error (Printf.sprintf "no such file %s" src_name)
  | src_file ->
    let out = Vfs.create dst dst_name in
    let total = Vfs.size src_file in
    let retries = ref 0 in
    let backoff = Backoff.create ~base_s:backoff_s ~seed:jitter_seed () in
    let retrying f =
      with_retry ~metrics:(Vfs.metrics dst) ~max_retries ~backoff ~retries f
    in
    let result =
      try
        Metrics.time (Vfs.metrics dst) "ship.total" (fun () ->
            let rec go off chunks =
              if off >= total then chunks
              else begin
                let len = min chunk_size (total - off) in
                Metrics.time (Vfs.metrics dst) "ship.chunk" (fun () ->
                    let data = Vfs.read_at src_file ~off ~len in
                    (* chunks are written and confirmed in order, and a
                       transient write persists nothing, so on retry [off]
                       still equals the durable size: rewriting at the same
                       offset is idempotent *)
                    retrying (fun () -> Vfs.write_at out ~off data));
                go (off + len) (chunks + 1)
              end
            in
            let chunks = go 0 0 in
            retrying (fun () -> Vfs.fsync out);
            Ok { bytes = total; chunks; retries = !retries })
      with Vfs.Fault.Transient op ->
        Error (Printf.sprintf "transient fault on %s persisted after %d retries" op max_retries)
    in
    Vfs.close out;
    Vfs.close src_file;
    result

(* Pack whole frames into blocks of at most [block_size] bytes.  A frame
   larger than the block size gets a block of its own — messages are
   never split across blocks, so every block decodes independently. *)
let pack_blocks ~block_size msgs =
  let framed = List.map (fun m -> Persistent_queue.encode_frames [ m ]) msgs in
  let rec go blocks cur cur_len = function
    | [] -> List.rev (if cur = [] then blocks else Buffer.to_bytes (flush_buf cur) :: blocks)
    | f :: rest ->
      let flen = Bytes.length f in
      if cur <> [] && cur_len + flen > block_size then
        go (Buffer.to_bytes (flush_buf cur) :: blocks) [ f ] flen rest
      else go blocks (f :: cur) (cur_len + flen) rest
  and flush_buf frames =
    let buf = Buffer.create 256 in
    List.iter (Buffer.add_bytes buf) (List.rev frames);
    buf
  in
  go [] [] 0 framed

let ship_messages ?(block_size = 64 * 1024) ?(max_retries = 8) ?(backoff_s = 0.0)
    ?(jitter_seed = 0) ~dst ~dst_name msgs =
  if block_size <= 0 then invalid_arg "File_ship.ship_messages: block_size <= 0";
  if max_retries < 0 then invalid_arg "File_ship.ship_messages: max_retries < 0";
  let out = Vfs.create dst dst_name in
  let metrics = Vfs.metrics dst in
  let retries = ref 0 in
  let backoff = Backoff.create ~base_s:backoff_s ~seed:jitter_seed () in
  let retrying f = with_retry ~metrics ~max_retries ~backoff ~retries f in
  let blocks = pack_blocks ~block_size msgs in
  let result =
    try
      Metrics.time metrics "ship.total" (fun () ->
          let rec go off chunks = function
            | [] -> (off, chunks)
            | block :: rest ->
              Metrics.time metrics "ship.chunk" (fun () ->
                  (* same idempotence argument as [ship]: fixed offset,
                     confirmed in order *)
                  retrying (fun () -> Vfs.write_at out ~off block));
              Metrics.observe metrics "ship.block_fill"
                (float_of_int (Bytes.length block) /. float_of_int block_size);
              go (off + Bytes.length block) (chunks + 1) rest
          in
          let bytes, chunks = go 0 0 blocks in
          retrying (fun () -> Vfs.fsync out);
          Metrics.add metrics "ship.msgs" (List.length msgs);
          Ok { bytes; chunks; retries = !retries })
    with Vfs.Fault.Transient op ->
      Error (Printf.sprintf "transient fault on %s persisted after %d retries" op max_retries)
  in
  Vfs.close out;
  result

let fetch_messages vfs ~name =
  match Vfs.open_existing vfs name with
  | exception Not_found -> Error (Printf.sprintf "no such file %s" name)
  | f ->
    let data = Vfs.read_at f ~off:0 ~len:(Vfs.size f) in
    Vfs.close f;
    Persistent_queue.decode_frames data
