lib/core/snapshot_extract.mli: Delta Dw_engine
