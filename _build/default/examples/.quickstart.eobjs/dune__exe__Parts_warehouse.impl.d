examples/parts_warehouse.ml: Dw_core Dw_engine Dw_relation Dw_storage Dw_transport Dw_util Dw_warehouse Dw_workload List Printf
