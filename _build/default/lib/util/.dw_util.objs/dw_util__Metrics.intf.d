lib/util/metrics.mli: Format
