(** Bench-regression gate: compare a fresh dwbench --json document
    against a committed baseline (BENCH_dwbench.json) with per-metric,
    direction-aware tolerances.

    {!Bench_check} gates a single document against absolute invariants;
    this module gates {e drift between two documents} — the CI step that
    fails a PR whose quick-bench run regresses the gated t5.*/w5.*/t6.*
    window/throughput keys or the deterministic t7.* planner keys out of
    band.  Wall-clock keys get loose regress-only tolerances (CI runners
    are noisy; improvements never fail), deterministic unit/ratio keys
    get tight two-sided ones, and invariant flags must match exactly.
    Both documents must come from the same mode (quick vs full) — the
    committed baseline is a quick run precisely so CI compares
    apples-to-apples. *)

module Json = Dw_util.Json

type rule =
  | Flag  (** invariant 0/1 (or exact count): must be exactly equal *)
  | Near of float  (** deterministic value: |rel change| <= tolerance *)
  | Lower_better of float  (** latency/window: fail only above [base * (1 + tol)] *)
  | Higher_better of float  (** throughput/speedup: fail only below [base * (1 - tol)] *)

val rules : (string * rule) list
(** The gated keys and their tolerances, one entry per gauge this gate
    watches (the Bench_check t5/w5/t6/t7 acceptance keys). *)

type verdict =
  | Pass
  | Fail
  | Missing_baseline
      (** key absent in the baseline document (an older baseline predating
          the metric) — reported, never failing *)
  | Missing_candidate  (** key absent in the fresh run — always failing *)

type outcome = {
  key : string;
  rule : rule;
  base : float option;  (** baseline value, if present *)
  cand : float option;  (** candidate value, if present *)
  verdict : verdict;
}

type report = {
  outcomes : outcome list;  (** in {!rules} order *)
  compared : int;  (** keys present in both documents *)
  failures : int;
}

val compare_docs :
  ?tolerance:float -> base:Json.t -> cand:Json.t -> unit -> (report, string) result
(** Gate [cand] against [base].  [tolerance] (default 1.0) scales every
    rule's tolerance — 2.0 doubles all bands, 0.5 halves them; [Flag]
    rules are unaffected.  [Error] on malformed documents or a quick/full
    mode mismatch (those are not "regressions", the comparison itself is
    invalid).  Raises [Invalid_argument] if [tolerance <= 0]. *)

val render : report -> string
(** Human-readable comparison table plus a pass/fail summary line. *)
