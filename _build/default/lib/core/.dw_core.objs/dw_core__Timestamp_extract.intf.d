lib/core/timestamp_extract.mli: Delta Dw_engine Dw_relation
