module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Ascii_util = Dw_engine.Ascii_util
module Export_util = Dw_engine.Export_util
module Heap_file = Dw_storage.Heap_file

type output =
  | To_file of string
  | To_table of string
  | To_table_export of { delta_table : string; export_file : string }

type stats = { rows : int; bytes_out : int; scanned_rows : int }

let work_units ~table_rows ~delta_rows = float_of_int table_rows +. float_of_int delta_rows

let matching_rows ~via db ~table ~since =
  let tbl = Db.table db table in
  let ts_col =
    match Table.ts_column tbl with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Timestamp_extract: table %s has no timestamp column" table)
  in
  match via with
  | `Ts_index ->
    let acc = ref [] in
    Table.ts_range tbl ~after:since (fun _ tuple -> acc := tuple :: !acc);
    let rows = List.rev !acc in
    (rows, List.length rows)
  | `Scan ->
    let schema = Table.schema tbl in
    let acc = ref [] in
    let scanned = ref 0 in
    Table.scan tbl (fun _ tuple ->
        incr scanned;
        match Tuple.get schema tuple ts_col with
        | Value.Date d when d > since -> acc := tuple :: !acc
        | Value.Date _ | _ -> ());
    (List.rev !acc, !scanned)

(* the delta table is a verbatim copy: no timestamp maintenance, or the
   captured last_modified values would be re-stamped on insert *)
let fresh_delta_table db name schema =
  (match Db.table_opt db name with Some _ -> Db.drop_table db name | None -> ());
  ignore (Db.create_table db ~name schema : Table.t)

let extract ?(via = `Scan) ?restrict ?project db ~table ~since ~output =
  let tbl = Db.table db table in
  let source_schema = Table.schema tbl in
  let rows, scanned = matching_rows ~via db ~table ~since in
  (* restriction: extra predicate over the source schema *)
  let rows =
    match restrict with
    | None -> rows
    | Some pred -> List.filter (fun r -> Expr.eval_pred source_schema r pred) rows
  in
  (* sub-setting: project to a column subset (key columns must survive) *)
  let schema, rows =
    match project with
    | None -> (source_schema, rows)
    | Some cols ->
      List.iteri
        (fun i _ ->
          let key_col = (Schema.column source_schema i).Schema.name in
          if i < Schema.key_arity source_schema && not (List.mem key_col cols) then
            invalid_arg
              (Printf.sprintf "Timestamp_extract: projection drops key column %s" key_col))
        (List.init (Schema.key_arity source_schema) Fun.id);
      let sub = Schema.project source_schema cols in
      let idxs = List.map (Schema.index_of source_schema) cols in
      (sub, List.map (fun r -> Array.of_list (List.map (fun i -> r.(i)) idxs)) rows)
  in
  let delta = Delta.make ~table ~schema (List.map (fun r -> Delta.Upsert r) rows) in
  let stats =
    match output with
    | To_file dest ->
      let d = Ascii_util.dump_tuples (Db.vfs db) ~schema ~dest rows in
      { rows = d.Ascii_util.rows; bytes_out = d.Ascii_util.bytes; scanned_rows = scanned }
    | To_table delta_table ->
      fresh_delta_table db delta_table schema;
      Db.with_txn db (fun txn ->
          List.iter
            (fun row -> ignore (Db.insert db txn delta_table row : Heap_file.rid))
            rows);
      { rows = List.length rows; bytes_out = 0; scanned_rows = scanned }
    | To_table_export { delta_table; export_file } ->
      fresh_delta_table db delta_table schema;
      Db.with_txn db (fun txn ->
          List.iter
            (fun row -> ignore (Db.insert db txn delta_table row : Heap_file.rid))
            rows);
      let e = Export_util.export_table db ~table:delta_table ~dest:export_file () in
      { rows = e.Export_util.rows; bytes_out = e.Export_util.bytes; scanned_rows = scanned }
  in
  (delta, stats)
