module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Trigger = Dw_engine.Trigger
module Heap_file = Dw_storage.Heap_file
module Codec = Dw_relation.Codec
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Metrics = Dw_util.Metrics

type view_state = {
  def : Spj_view.t;
  backing : string;
  out_schema : Schema.t;
  back_schema : Schema.t;
}

type agg_state = {
  adef : Agg_view.t;
  abacking : string;
  aout_schema : Schema.t;
  aback_schema : Schema.t;
}

type t = {
  db : Db.t;
  replicas : (string, Schema.t) Hashtbl.t;
  views : (string, view_state) Hashtbl.t;  (* view name -> state *)
  agg_views : (string, agg_state) Hashtbl.t;
  viewonly : (string, view_state) Hashtbl.t;
  by_source : (string, string list ref) Hashtbl.t;  (* source table -> view names *)
  agg_by_source : (string, string list ref) Hashtbl.t;
  mutable row_ops : int;  (* counted across integrations via triggers *)
}

let create ?pool_pages ?pool_stripes ~vfs ~name () =
  let db = Db.create ?pool_pages ?pool_stripes ~vfs ~name () in
  (* the warehouse resolves keyed predicates through the pk index, unlike
     the paper's scan-bound operational sources *)
  Db.set_plan_mode db `Index_preferred;
  {
    db;
    replicas = Hashtbl.create 8;
    views = Hashtbl.create 8;
    agg_views = Hashtbl.create 8;
    viewonly = Hashtbl.create 8;
    by_source = Hashtbl.create 8;
    agg_by_source = Hashtbl.create 8;
    row_ops = 0;
  }

let db t = t.db

let views_on t source =
  match Hashtbl.find_opt t.by_source source with
  | Some cell -> List.filter_map (Hashtbl.find_opt t.views) !cell
  | None -> []

let backing_schema out_schema =
  Schema.make ~key_arity:(Schema.arity out_schema)
    (Schema.columns out_schema
     @ [ { Schema.name = "__count"; ty = Value.Tint; nullable = false } ])

(* aggregate backing: the key is only the group columns *)
let backing_schema_keyed out_schema =
  Schema.make ~key_arity:(Schema.key_arity out_schema)
    (Schema.columns out_schema
     @ [ { Schema.name = "__count"; ty = Value.Tint; nullable = false } ])

let count_of back_schema row =
  match row.(Schema.arity back_schema - 1) with
  | Value.Int n -> n
  | _ -> invalid_arg "Warehouse: corrupt __count"

let with_count out_row count = Array.append out_row [| Value.Int count |]

(* adjust one view row's multiplicity inside the current transaction *)
let adjust t txn vs out_row delta =
  t.row_ops <- t.row_ops + 1;
  match Db.find_by_key t.db txn vs.backing out_row with
  | Some (rid, existing) ->
    let c = count_of vs.back_schema existing + delta in
    if c < 0 then
      invalid_arg
        (Printf.sprintf "Warehouse: view %s multiplicity below zero for %s"
           (Spj_view.name vs.def) (Tuple.to_string out_row))
    else if c = 0 then Db.delete_rid t.db txn vs.backing rid
    else Db.update_rid t.db txn vs.backing rid (with_count out_row c)
  | None ->
    if delta < 0 then
      invalid_arg
        (Printf.sprintf "Warehouse: view %s removing absent row %s" (Spj_view.name vs.def)
           (Tuple.to_string out_row))
    else if delta > 0 then
      ignore (Db.insert_row t.db txn vs.backing (with_count out_row delta) : Heap_file.rid)

let other_side_rows t vs source =
  match vs.def with
  | Spj_view.Select_project _ -> []
  | Spj_view.Join { left_table; right_table; _ } ->
    let other = if source = left_table then right_table else left_table in
    let rows = ref [] in
    Table.scan (Db.table t.db other) (fun _ row -> rows := row :: !rows);
    !rows

let side_of vs source =
  match vs.def with
  | Spj_view.Select_project _ -> Spj_view.L
  | Spj_view.Join { left_table; _ } ->
    if source = left_table then Spj_view.L else Spj_view.R

let contributions t vs source row =
  match vs.def with
  | Spj_view.Select_project _ -> (
      match Spj_view.project_sp vs.def row with Some out -> [ out ] | None -> [])
  | Spj_view.Join _ ->
    Spj_view.join_contribution vs.def (side_of vs source) row
      ~other_rows:(other_side_rows t vs source)

(* ---------- aggregate view maintenance ---------- *)

let agg_views_on t source =
  match Hashtbl.find_opt t.agg_by_source source with
  | Some cell -> List.filter_map (Hashtbl.find_opt t.agg_views) !cell
  | None -> []

let agg_count_of back_schema row =
  match row.(Schema.arity back_schema - 1) with
  | Value.Int n -> n
  | _ -> invalid_arg "Warehouse: corrupt agg __count"

let agg_out_of ast row = Array.sub row 0 (Schema.arity ast.aout_schema)

let replica_rows_now t table =
  let rows = ref [] in
  Table.scan (Db.table t.db table) (fun _ row -> rows := row :: !rows);
  !rows

let agg_apply_insert t txn ast row =
  if Agg_view.passes ast.adef row then begin
    t.row_ops <- t.row_ops + 1;
    let group = Agg_view.group_key ast.adef row in
    match Db.find_by_key t.db txn ast.abacking group with
    | Some (rid, existing) ->
      let count = agg_count_of ast.aback_schema existing in
      let out = Agg_view.apply_insert ast.adef ~current:(agg_out_of ast existing) row in
      Db.update_rid t.db txn ast.abacking rid (with_count out (count + 1))
    | None ->
      ignore
        (Db.insert_row t.db txn ast.abacking
           (with_count (Agg_view.init_group ast.adef row) 1)
          : Heap_file.rid)
  end

let agg_apply_delete t txn ast row =
  if Agg_view.passes ast.adef row then begin
    t.row_ops <- t.row_ops + 1;
    let group = Agg_view.group_key ast.adef row in
    match Db.find_by_key t.db txn ast.abacking group with
    | None ->
      invalid_arg
        (Printf.sprintf "Warehouse: agg view %s missing group %s" ast.adef.Agg_view.name
           (Tuple.to_string group))
    | Some (rid, existing) ->
      let count = agg_count_of ast.aback_schema existing in
      if count <= 1 then Db.delete_rid t.db txn ast.abacking rid
      else begin
        match Agg_view.apply_delete ast.adef ~current:(agg_out_of ast existing) row with
        | Agg_view.Updated out -> Db.update_rid t.db txn ast.abacking rid (with_count out (count - 1))
        | Agg_view.Needs_rescan -> (
            (* the trigger is AFTER: the replica no longer holds [row] *)
            let detail = replica_rows_now t ast.adef.Agg_view.table in
            match Agg_view.recompute_group ast.adef ~group ~replica_rows:detail with
            | Some (out, n) -> Db.update_rid t.db txn ast.abacking rid (with_count out n)
            | None -> Db.delete_rid t.db txn ast.abacking rid)
      end
  end

(* refresh one whole group from replica detail (used for updates, where
   incremental delete-then-insert would see the post-update replica twice) *)
let agg_refresh_group t txn ast group =
  t.row_ops <- t.row_ops + 1;
  let detail = replica_rows_now t ast.adef.Agg_view.table in
  let current = Db.find_by_key t.db txn ast.abacking group in
  match Agg_view.recompute_group ast.adef ~group ~replica_rows:detail, current with
  | Some (out, n), Some (rid, _) -> Db.update_rid t.db txn ast.abacking rid (with_count out n)
  | Some (out, n), None ->
    ignore (Db.insert_row t.db txn ast.abacking (with_count out n) : Heap_file.rid)
  | None, Some (rid, _) -> Db.delete_rid t.db txn ast.abacking rid
  | None, None -> ()

(* Updates run incrementally: remove the before-row's contribution and add
   the after-row's.  Only a MIN/MAX extremum leaving its group forces a
   group refresh — and that refresh reads the post-update replica, so the
   incremental insert of the after-row must be skipped when it landed in
   the refreshed group. *)
let agg_apply_update t txn ast ~before ~after =
  let passes = Agg_view.passes ast.adef in
  let before_in = passes before and after_in = passes after in
  let g_before = if before_in then Some (Agg_view.group_key ast.adef before) else None in
  let g_after = if after_in then Some (Agg_view.group_key ast.adef after) else None in
  match g_before, g_after with
  | None, None -> ()
  | None, Some _ -> agg_apply_insert t txn ast after
  | Some group, after_opt -> (
      let same_group =
        match after_opt with Some g -> Tuple.equal g group | None -> false
      in
      t.row_ops <- t.row_ops + 1;
      match Db.find_by_key t.db txn ast.abacking group with
      | None ->
        invalid_arg
          (Printf.sprintf "Warehouse: agg view %s missing group %s" ast.adef.Agg_view.name
             (Tuple.to_string group))
      | Some (rid, existing) -> (
          let count = agg_count_of ast.aback_schema existing in
          match Agg_view.apply_delete ast.adef ~current:(agg_out_of ast existing) before with
          | Agg_view.Updated out ->
            if same_group then
              (* fold the after-row straight back in; cardinality unchanged *)
              Db.update_rid t.db txn ast.abacking rid
                (with_count (Agg_view.apply_insert ast.adef ~current:out after) count)
            else begin
              (if count <= 1 then Db.delete_rid t.db txn ast.abacking rid
               else Db.update_rid t.db txn ast.abacking rid (with_count out (count - 1)));
              match after_opt with
              | Some _ -> agg_apply_insert t txn ast after
              | None -> ()
            end
          | Agg_view.Needs_rescan ->
            (* the post-update replica already holds the after-row: a
               refresh of [group] absorbs it when same_group, otherwise
               the after-row's own group still needs its insert *)
            agg_refresh_group t txn ast group;
            if not same_group then
              match after_opt with
              | Some _ -> agg_apply_insert t txn ast after
              | None -> ()))

let maintain_views t source (ctx : Db.trigger_ctx) event =
  let apply row delta =
    List.iter
      (fun vs ->
        List.iter (fun out -> adjust t ctx.Db.ctx_txn vs out delta) (contributions t vs source row))
      (views_on t source)
  in
  let apply_agg row delta =
    List.iter
      (fun ast ->
        if delta > 0 then agg_apply_insert t ctx.Db.ctx_txn ast row
        else agg_apply_delete t ctx.Db.ctx_txn ast row)
      (agg_views_on t source)
  in
  match event with
  | Trigger.Inserted (_, after) ->
    t.row_ops <- t.row_ops + 1;
    apply after 1;
    apply_agg after 1
  | Trigger.Deleted (_, before) ->
    t.row_ops <- t.row_ops + 1;
    apply before (-1);
    apply_agg before (-1)
  | Trigger.Updated (_, before, after) ->
    t.row_ops <- t.row_ops + 1;
    apply before (-1);
    apply after 1;
    List.iter
      (fun ast -> agg_apply_update t ctx.Db.ctx_txn ast ~before ~after)
      (agg_views_on t source)

let add_replica t ~table ~schema =
  if Hashtbl.mem t.replicas table then
    invalid_arg (Printf.sprintf "Warehouse.add_replica: %s exists" table);
  ignore (Db.create_table t.db ~name:table schema : Table.t);
  Hashtbl.add t.replicas table schema;
  Db.add_trigger t.db ~table
    {
      Trigger.name = "maintain_views__" ^ table;
      on = [ Trigger.On_insert; Trigger.On_delete; Trigger.On_update ];
      action = (fun ctx event -> maintain_views t table ctx event);
    }

let load_replica t ~table rows =
  let tbl = Db.table t.db table in
  let schema = Table.schema tbl in
  List.iter
    (fun row ->
      ignore (Table.raw_insert_blind tbl (Codec.encode_binary schema row) : Heap_file.rid))
    rows;
  Table.rebuild_indexes tbl

let replica_rows t table =
  let rows = ref [] in
  Table.scan (Db.table t.db table) (fun _ row -> rows := row :: !rows);
  List.rev !rows

let recompute_view t name =
  match Hashtbl.find_opt t.views name with
  | None -> raise Not_found
  | Some vs -> Spj_view.eval vs.def ~rows_of:(replica_rows t)

let define_view t view =
  let name = Spj_view.name view in
  if Hashtbl.mem t.views name || Hashtbl.mem t.viewonly name then
    invalid_arg (Printf.sprintf "Warehouse.define_view: %s exists" name);
  (match Spj_view.validate view with
   | Ok () -> ()
   | Error e -> invalid_arg ("Warehouse.define_view: " ^ e));
  List.iter
    (fun source ->
      if not (Hashtbl.mem t.replicas source) then
        invalid_arg
          (Printf.sprintf "Warehouse.define_view: no replica for source table %s" source))
    (Spj_view.source_tables view);
  let out_schema = Spj_view.output_schema view in
  let back_schema = backing_schema out_schema in
  ignore (Db.create_table t.db ~name back_schema : Table.t);
  let vs = { def = view; backing = name; out_schema; back_schema } in
  Hashtbl.add t.views name vs;
  List.iter
    (fun source ->
      let cell =
        match Hashtbl.find_opt t.by_source source with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add t.by_source source cell;
          cell
      in
      cell := name :: !cell)
    (Spj_view.source_tables view);
  (* materialize from current replica contents *)
  let contents = Spj_view.eval view ~rows_of:(replica_rows t) in
  let tbl = Db.table t.db name in
  List.iter
    (fun (row, count) ->
      ignore
        (Table.raw_insert_blind tbl (Codec.encode_binary back_schema (with_count row count))
          : Heap_file.rid))
    contents;
  Table.rebuild_indexes tbl

let view_rows t name =
  match Hashtbl.find_opt t.views name with
  | None -> raise Not_found
  | Some vs ->
    let rows = ref [] in
    Table.scan (Db.table t.db name) (fun _ row ->
        let count = count_of vs.back_schema row in
        let out = Array.sub row 0 (Schema.arity vs.out_schema) in
        rows := (out, count) :: !rows);
    List.sort (fun (a, _) (b, _) -> Tuple.compare a b) !rows

let define_agg_view t view =
  let name = view.Agg_view.name in
  if Hashtbl.mem t.agg_views name || Hashtbl.mem t.views name then
    invalid_arg (Printf.sprintf "Warehouse.define_agg_view: %s exists" name);
  (match Agg_view.validate view with
   | Ok () -> ()
   | Error e -> invalid_arg ("Warehouse.define_agg_view: " ^ e));
  if not (Hashtbl.mem t.replicas view.Agg_view.table) then
    invalid_arg
      (Printf.sprintf "Warehouse.define_agg_view: no replica for %s" view.Agg_view.table);
  let aout_schema = Agg_view.output_schema view in
  let aback_schema = backing_schema_keyed aout_schema in
  ignore (Db.create_table t.db ~name aback_schema : Table.t);
  let ast = { adef = view; abacking = name; aout_schema; aback_schema } in
  Hashtbl.add t.agg_views name ast;
  let cell =
    match Hashtbl.find_opt t.agg_by_source view.Agg_view.table with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add t.agg_by_source view.Agg_view.table cell;
      cell
  in
  cell := name :: !cell;
  (* materialize *)
  let contents = Agg_view.eval view ~rows:(replica_rows t view.Agg_view.table) in
  let tbl = Db.table t.db name in
  List.iter
    (fun (row, count) ->
      ignore
        (Table.raw_insert_blind tbl (Codec.encode_binary aback_schema (with_count row count))
          : Heap_file.rid))
    contents;
  Table.rebuild_indexes tbl

let agg_view_rows t name =
  match Hashtbl.find_opt t.agg_views name with
  | None -> raise Not_found
  | Some ast ->
    let rows = ref [] in
    Table.scan (Db.table t.db name) (fun _ row ->
        rows := (agg_out_of ast row, agg_count_of ast.aback_schema row) :: !rows);
    List.sort (fun (a, _) (b, _) -> Tuple.compare a b) !rows

let agg_view_def t name =
  Option.map (fun ast -> ast.adef) (Hashtbl.find_opt t.agg_views name)

let recompute_agg_view t name =
  match Hashtbl.find_opt t.agg_views name with
  | None -> raise Not_found
  | Some ast -> Agg_view.eval ast.adef ~rows:(replica_rows t ast.adef.Agg_view.table)

type stats = { txns : int; statements : int; row_ops : int; duration : float }

let zero_stats = { txns = 0; statements = 0; row_ops = 0; duration = 0.0 }

let add_stats a b =
  {
    txns = a.txns + b.txns;
    statements = a.statements + b.statements;
    row_ops = a.row_ops + b.row_ops;
    duration = a.duration +. b.duration;
  }

(* Per the paper (Section 4.1), a value delta integrates as SQL
   statements: one INSERT per captured insert image, one keyed DELETE per
   delete image, and a keyed DELETE (before image) plus an INSERT (after
   image) per update.  The statements run through the normal executor, so
   a value delta of x updates costs 2x statement executions where the
   Op-Delta costs one. *)
let key_predicate schema tuple =
  let preds =
    List.init (Schema.key_arity schema) (fun i ->
        let col = (Schema.column schema i).Schema.name in
        Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Lit tuple.(i)))
  in
  match Expr.conj preds with Some p -> p | None -> assert false

let insert_stmt table tuple =
  Dw_sql.Ast.Insert { table; columns = None; rows = [ Array.to_list tuple ] }

let delete_stmt table schema tuple =
  Dw_sql.Ast.Delete { table; where = Some (key_predicate schema tuple) }

let update_stmt table schema tuple =
  (* SET every non-key column to the after image's literal *)
  let sets =
    List.filteri (fun i _ -> i >= Schema.key_arity schema) (Schema.columns schema)
    |> List.map (fun c ->
           (c.Schema.name, Expr.Lit tuple.(Schema.index_of schema c.Schema.name)))
  in
  Dw_sql.Ast.Update { table; sets; where = Some (key_predicate schema tuple) }

let integrate_value_delta (t : t) delta =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let table = delta.Delta.table in
  let schema = delta.Delta.schema in
  let start = Metrics.now (Db.metrics t.db) in
  let row_ops0 = t.row_ops in
  let statements = ref 0 in
  (* the differential file is data; the integrator turns each record into
     SQL text and runs it through the full statement path (parse included),
     which is where the per-record statement overhead of the paper's value
     path comes from *)
  let exec txn stmt =
    incr statements;
    match Db.exec_sql t.db txn (Dw_sql.Printer.to_string stmt) with
    | Ok result -> result
    | Error e -> invalid_arg ("Warehouse.integrate_value_delta: " ^ e)
  in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun change ->
          match change with
          | Delta.Insert after -> ignore (exec txn (insert_stmt table after) : Db.exec_result)
          | Delta.Delete before ->
            ignore (exec txn (delete_stmt table schema before) : Db.exec_result)
          | Delta.Update (before, after) ->
            ignore (exec txn (delete_stmt table schema before) : Db.exec_result);
            ignore (exec txn (insert_stmt table after) : Db.exec_result)
          | Delta.Upsert after -> (
              (* update-or-insert by key *)
              match exec txn (update_stmt table schema after) with
              | Db.Affected 0 -> ignore (exec txn (insert_stmt table after) : Db.exec_result)
              | Db.Affected _ | Db.Rows _ | Db.Created -> ()))
        delta.Delta.changes);
  {
    txns = 1;
    statements = !statements;
    row_ops = t.row_ops - row_ops0;
    duration = Metrics.now (Db.metrics t.db) -. start;
  }

let integrate_op_delta (t : t) od =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let start = Metrics.now (Db.metrics t.db) in
  let row_ops0 = t.row_ops in
  let statements = ref 0 in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun (op : Op_delta.op) ->
          incr statements;
          (* op-deltas arrive as SQL text as well — one parse per source
             statement, not per affected row *)
          match Db.exec_sql t.db txn (Dw_sql.Printer.to_string op.Op_delta.stmt) with
          | Ok _ -> ()
          | Error e -> invalid_arg ("Warehouse.integrate_op_delta: " ^ e))
        od.Op_delta.ops);
  {
    txns = 1;
    statements = !statements;
    row_ops = t.row_ops - row_ops0;
    duration = Metrics.now (Db.metrics t.db) -. start;
  }

(* ---------- replica-less (view-only) maintenance ---------- *)

let define_viewonly_view t view =
  (match view with
   | Spj_view.Select_project _ -> ()
   | Spj_view.Join _ ->
     invalid_arg
       "Warehouse.define_viewonly_view: join views are not self-maintainable without replicas");
  let name = Spj_view.name view in
  if Hashtbl.mem t.viewonly name || Hashtbl.mem t.views name || Hashtbl.mem t.agg_views name
  then invalid_arg (Printf.sprintf "Warehouse.define_viewonly_view: %s exists" name);
  (match Spj_view.validate view with
   | Ok () -> ()
   | Error e -> invalid_arg ("Warehouse.define_viewonly_view: " ^ e));
  let out_schema = Spj_view.output_schema view in
  let back_schema = backing_schema out_schema in
  ignore (Db.create_table t.db ~name back_schema : Table.t);
  Hashtbl.add t.viewonly name { def = view; backing = name; out_schema; back_schema }

let viewonly_views_for t source =
  Hashtbl.fold
    (fun _ vs acc ->
      if List.mem source (Spj_view.source_tables vs.def) then vs :: acc else acc)
    t.viewonly []

let viewonly_view_rows t name =
  match Hashtbl.find_opt t.viewonly name with
  | None -> raise Not_found
  | Some vs ->
    let rows = ref [] in
    Table.scan (Db.table t.db name) (fun _ row ->
        let count = count_of vs.back_schema row in
        let out = Array.sub row 0 (Schema.arity vs.out_schema) in
        rows := (out, count) :: !rows);
    List.sort (fun (a, _) (b, _) -> Tuple.compare a b) !rows

(* build the inserted tuples an INSERT statement describes, in the source
   schema's column order (the same resolution Db.insert_values performs) *)
let tuples_of_insert schema columns rows =
  List.map
    (fun row ->
      match columns with
      | None ->
        if List.length row <> Schema.arity schema then
          invalid_arg "Warehouse: INSERT arity mismatch in view-only integration";
        Array.of_list row
      | Some cols ->
        let tuple = Array.make (Schema.arity schema) Value.Null in
        (try List.iter2 (fun col v -> tuple.(Schema.index_of schema col) <- v) cols row
         with Invalid_argument _ ->
           invalid_arg "Warehouse: INSERT columns/values mismatch in view-only integration");
        tuple)
    rows

let viewonly_after_image schema sets before =
  List.fold_left
    (fun tuple (col, e) ->
      Tuple.set schema tuple col (Dw_relation.Expr.eval schema before e))
    before sets

let integrate_op_delta_viewonly (t : t) od =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let start = Metrics.now (Db.metrics t.db) in
  let row_ops0 = t.row_ops in
  let statements = ref 0 in
  let module Ast = Dw_sql.Ast in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun (op : Op_delta.op) ->
          incr statements;
          let stmt = op.Op_delta.stmt in
          let source = Ast.table_of stmt in
          let views = viewonly_views_for t source in
          if views <> [] then begin
            let source_schema =
              match List.nth_opt views 0 with
              | Some vs -> (
                  match vs.def with
                  | Spj_view.Select_project { schema; _ } -> schema
                  | Spj_view.Join _ -> assert false)
              | None -> assert false
            in
            let adjust_rows rows delta =
              List.iter
                (fun row ->
                  List.iter
                    (fun vs ->
                      match Spj_view.project_sp vs.def row with
                      | Some out -> adjust t txn vs out delta
                      | None -> ())
                    views)
                rows
            in
            match stmt with
            | Ast.Insert { columns; rows; _ } ->
              adjust_rows (tuples_of_insert source_schema columns rows) 1
            | Ast.Delete _ ->
              (* an empty image list is also what a zero-row DELETE looks
                 like, so it cannot be rejected — hybrid capture is the
                 caller's responsibility (see mli) *)
              adjust_rows op.Op_delta.before_images (-1)
            | Ast.Update { sets; _ } ->
              adjust_rows op.Op_delta.before_images (-1);
              adjust_rows
                (List.map (viewonly_after_image source_schema sets) op.Op_delta.before_images)
                1
            | Ast.Select _ | Ast.Create_table _ -> ()
          end)
        od.Op_delta.ops);
  {
    txns = 1;
    statements = !statements;
    row_ops = t.row_ops - row_ops0;
    duration = Metrics.now (Db.metrics t.db) -. start;
  }

let integrate_op_deltas t ods =
  List.fold_left (fun acc od -> add_stats acc (integrate_op_delta t od)) zero_stats ods

(* ---------- micro-batched apply ---------- *)

type batch_policy = {
  max_batch : int;
  min_batch : int;
  lock_wait_p95_s : float;
}

let default_batch_policy = { max_batch = 16; min_batch = 1; lock_wait_p95_s = 0.010 }

let validate_batch_policy p =
  if p.min_batch < 1 then invalid_arg "Warehouse: batch_policy.min_batch < 1";
  if p.max_batch < p.min_batch then
    invalid_arg "Warehouse: batch_policy.max_batch < min_batch";
  if not (p.lock_wait_p95_s >= 0.0) then
    invalid_arg "Warehouse: batch_policy.lock_wait_p95_s < 0"

(* apply a run of consecutive source transactions as ONE warehouse
   transaction, re-executing every statement in source commit order; the
   mark callback runs inside the same transaction so progress records
   (the partitioned refresh's per-shard watermark) commit atomically
   with the run *)
let integrate_op_delta_run_marked (t : t) ~mark ods =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let start = Metrics.now (Db.metrics t.db) in
  let row_ops0 = t.row_ops in
  let statements = ref 0 in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun od ->
          List.iter
            (fun (op : Op_delta.op) ->
              incr statements;
              match Db.exec_sql t.db txn (Dw_sql.Printer.to_string op.Op_delta.stmt) with
              | Ok _ -> ()
              | Error e -> invalid_arg ("Warehouse.integrate_op_delta_run: " ^ e))
            od.Op_delta.ops)
        ods;
      mark txn);
  {
    txns = 1;
    statements = !statements;
    row_ops = t.row_ops - row_ops0;
    duration = Metrics.now (Db.metrics t.db) -. start;
  }

let integrate_op_delta_run (t : t) ods = integrate_op_delta_run_marked t ~mark:ignore ods

let take n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let integrate_op_deltas_batched ?(policy = default_batch_policy) t ods =
  validate_batch_policy policy;
  let metrics = Db.metrics t.db in
  (* the valve: open at max, shrink multiplicatively when reader
     lock-waits climb, recover additively when they subside *)
  let target = ref policy.max_batch in
  let rec go acc = function
    | [] -> acc
    | rest ->
      let run, rest = take !target rest in
      Metrics.observe metrics "warehouse.batch_size" (float_of_int (List.length run));
      let acc = add_stats acc (integrate_op_delta_run t run) in
      let p95 = Metrics.percentile metrics "lock.wait" 0.95 in
      if p95 > policy.lock_wait_p95_s then target := max policy.min_batch (!target / 2)
      else target := min policy.max_batch (!target + 1);
      Metrics.set_gauge metrics "warehouse.batch_size_target" (float_of_int !target);
      go acc rest
  in
  go zero_stats ods

(* ---------- bootstrap (chunked online load) support ---------- *)

let attach ~db () =
  Db.set_plan_mode db `Index_preferred;
  {
    db;
    replicas = Hashtbl.create 8;
    views = Hashtbl.create 8;
    agg_views = Hashtbl.create 8;
    viewonly = Hashtbl.create 8;
    by_source = Hashtbl.create 8;
    agg_by_source = Hashtbl.create 8;
    row_ops = 0;
  }

let attach_replica t ~table =
  if Hashtbl.mem t.replicas table then
    invalid_arg (Printf.sprintf "Warehouse.attach_replica: %s already attached" table);
  match Db.table_opt t.db table with
  | None -> invalid_arg (Printf.sprintf "Warehouse.attach_replica: no table %s" table)
  | Some tbl ->
    Hashtbl.add t.replicas table (Table.schema tbl);
    Db.add_trigger t.db ~table
      {
        Trigger.name = "maintain_views__" ^ table;
        on = [ Trigger.On_insert; Trigger.On_delete; Trigger.On_update ];
        action = (fun ctx event -> maintain_views t table ctx event);
      }

let view_backing_schema view = backing_schema (Spj_view.output_schema view)
let agg_view_backing_schema view = backing_schema_keyed (Agg_view.output_schema view)

(* register an existing view's definition without creating or
   materializing its backing table — the resume path after a crash, where
   the backing table's bytes were recovered by Db.reopen and only the
   in-memory registration was lost *)
let attach_view t view =
  let name = Spj_view.name view in
  if Hashtbl.mem t.views name || Hashtbl.mem t.viewonly name then
    invalid_arg (Printf.sprintf "Warehouse.attach_view: %s already attached" name);
  (match Spj_view.validate view with
   | Ok () -> ()
   | Error e -> invalid_arg ("Warehouse.attach_view: " ^ e));
  if Db.table_opt t.db name = None then
    invalid_arg (Printf.sprintf "Warehouse.attach_view: no backing table %s" name);
  let out_schema = Spj_view.output_schema view in
  Hashtbl.add t.views name
    { def = view; backing = name; out_schema; back_schema = backing_schema out_schema };
  List.iter
    (fun source ->
      let cell =
        match Hashtbl.find_opt t.by_source source with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add t.by_source source cell;
          cell
      in
      cell := name :: !cell)
    (Spj_view.source_tables view)

let attach_agg_view t view =
  let name = view.Agg_view.name in
  if Hashtbl.mem t.agg_views name || Hashtbl.mem t.views name then
    invalid_arg (Printf.sprintf "Warehouse.attach_agg_view: %s already attached" name);
  (match Agg_view.validate view with
   | Ok () -> ()
   | Error e -> invalid_arg ("Warehouse.attach_agg_view: " ^ e));
  if Db.table_opt t.db name = None then
    invalid_arg (Printf.sprintf "Warehouse.attach_agg_view: no backing table %s" name);
  let aout_schema = Agg_view.output_schema view in
  Hashtbl.add t.agg_views name
    {
      adef = view;
      abacking = name;
      aout_schema;
      aback_schema = backing_schema_keyed aout_schema;
    };
  let cell =
    match Hashtbl.find_opt t.agg_by_source view.Agg_view.table with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add t.agg_by_source view.Agg_view.table cell;
      cell
  in
  cell := name :: !cell

let int_key schema tuple =
  if Schema.key_arity schema <> 1 then
    invalid_arg "Warehouse: bootstrap apply needs a single-column primary key";
  match tuple.(0) with
  | Value.Int k -> k
  | _ -> invalid_arg "Warehouse: bootstrap apply needs an INT primary key"

let exec_checked t txn ctx stmt =
  match Db.exec t.db txn stmt with
  | result -> result
  | exception Invalid_argument e -> invalid_arg (ctx ^ ": " ^ e)

let upsert_row t txn ctx schema ~table tuple =
  match exec_checked t txn ctx (update_stmt table schema tuple) with
  | Db.Affected 0 -> ignore (exec_checked t txn ctx (insert_stmt table tuple) : Db.exec_result)
  | Db.Affected _ | Db.Rows _ | Db.Created -> ()

let integrate_op_delta_marked (t : t) ~mark od =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let start = Metrics.now (Db.metrics t.db) in
  let row_ops0 = t.row_ops in
  let statements = ref 0 in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun (op : Op_delta.op) ->
          incr statements;
          ignore
            (exec_checked t txn "Warehouse.integrate_op_delta_marked" op.Op_delta.stmt
              : Db.exec_result))
        od.Op_delta.ops;
      mark txn);
  {
    txns = 1;
    statements = !statements;
    row_ops = t.row_ops - row_ops0;
    duration = Metrics.now (Db.metrics t.db) -. start;
  }

let integrate_op_delta_images (t : t) ~table ~mark od =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let ctx = "Warehouse.integrate_op_delta_images" in
  let module Ast = Dw_sql.Ast in
  let schema =
    match Hashtbl.find_opt t.replicas table with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "%s: %s is not a replica" ctx table)
  in
  let touched = ref [] in
  let touch tuple = touched := int_key schema tuple :: !touched in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun (op : Op_delta.op) ->
          if String.equal (Ast.table_of op.Op_delta.stmt) table then
            match op.Op_delta.stmt with
            | Ast.Insert { columns; rows; _ } ->
              List.iter
                (fun tuple ->
                  touch tuple;
                  upsert_row t txn ctx schema ~table tuple)
                (tuples_of_insert schema columns rows)
            | Ast.Update { sets; _ } ->
              List.iter
                (fun before ->
                  let after = viewonly_after_image schema sets before in
                  touch after;
                  upsert_row t txn ctx schema ~table after)
                op.Op_delta.before_images
            | Ast.Delete _ ->
              List.iter
                (fun before ->
                  touch before;
                  ignore (exec_checked t txn ctx (delete_stmt table schema before) : Db.exec_result))
                op.Op_delta.before_images
            | Ast.Select _ | Ast.Create_table _ -> ())
        od.Op_delta.ops;
      mark txn);
  List.rev !touched

let load_chunk (t : t) ~table ~skip ~mark rows =
  Metrics.with_span (Db.metrics t.db) "warehouse.refresh" @@ fun () ->
  let ctx = "Warehouse.load_chunk" in
  let schema =
    match Hashtbl.find_opt t.replicas table with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "%s: %s is not a replica" ctx table)
  in
  let loaded = ref 0 in
  Db.with_txn t.db (fun txn ->
      List.iter
        (fun tuple ->
          if not (skip (int_key schema tuple)) then begin
            incr loaded;
            upsert_row t txn ctx schema ~table tuple
          end)
        rows;
      mark txn);
  !loaded
