lib/relation/codec.mli: Schema Tuple
