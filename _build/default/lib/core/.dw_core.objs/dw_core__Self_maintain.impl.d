lib/core/self_maintain.ml: Dw_sql List Printf Spj_view
