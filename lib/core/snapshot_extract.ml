module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Ascii_util = Dw_engine.Ascii_util
module Snapshot_diff = Dw_snapshot.Snapshot_diff
module Codec = Dw_relation.Codec

type algorithm = Sort_merge | Partitioned_hash of int | Window of int | External_sort of int

type stats = { rows : int; dumped_rows : int; dump_bytes : int; scratch_bytes : int }

let work_units ~table_rows ~delta_rows =
  (2.0 *. float_of_int table_rows) +. float_of_int delta_rows

let entry_to_change = function
  | Snapshot_diff.Added t -> Delta.Insert t
  | Snapshot_diff.Removed t -> Delta.Delete t
  | Snapshot_diff.Changed (before, after) -> Delta.Update (before, after)

let read_rows db schema file =
  let rows = ref [] in
  match
    Ascii_util.iter_lines (Db.vfs db) file ~f:(fun line ->
        match Codec.decode_ascii schema line with
        | Ok t -> rows := t :: !rows
        | Error e -> failwith e)
  with
  | Ok _ -> Ok (List.rev !rows)
  | Error e -> Error e
  | exception Failure e -> Error e

let extract db ~table ~prev_snapshot ~snapshot_dest ~algorithm =
  let tbl = Db.table db table in
  let schema = Table.schema tbl in
  let dump = Ascii_util.dump db ~table ~dest:snapshot_dest () in
  let finish entries scratch_bytes =
    let changes = List.map entry_to_change entries in
    Ok
      ( Delta.make ~table ~schema changes,
        {
          rows = List.length changes;
          dumped_rows = dump.Ascii_util.rows;
          dump_bytes = dump.Ascii_util.bytes;
          scratch_bytes;
        } )
  in
  match prev_snapshot with
  | None -> (
      match read_rows db schema snapshot_dest with
      | Error e -> Error e
      | Ok rows ->
        finish (List.map (fun r -> Snapshot_diff.Added r) rows) 0)
  | Some prev -> (
      match algorithm with
      | Sort_merge -> (
          match read_rows db schema prev, read_rows db schema snapshot_dest with
          | Ok old_rows, Ok new_rows ->
            let entries, s = Snapshot_diff.sort_merge schema ~old_rows ~new_rows in
            finish entries s.Snapshot_diff.scratch_bytes
          | Error e, _ | _, Error e -> Error e)
      | Partitioned_hash buckets -> (
          match
            Snapshot_diff.partitioned_hash ~buckets (Db.vfs db) schema ~old_file:prev
              ~new_file:snapshot_dest
          with
          | Ok (entries, s) -> finish entries s.Snapshot_diff.scratch_bytes
          | Error e -> Error e)
      | Window window_rows -> (
          match
            Snapshot_diff.window ~window_rows (Db.vfs db) schema ~old_file:prev
              ~new_file:snapshot_dest
          with
          | Ok (entries, s) -> finish entries s.Snapshot_diff.scratch_bytes
          | Error e -> Error e)
      | External_sort run_rows -> (
          match
            Snapshot_diff.external_sort_merge ~run_rows (Db.vfs db) schema ~old_file:prev
              ~new_file:snapshot_dest
          with
          | Ok (entries, s) -> finish entries s.Snapshot_diff.scratch_bytes
          | Error e -> Error e))
