module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Ast = Dw_sql.Ast
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Vfs = Dw_storage.Vfs
module Heap_file = Dw_storage.Heap_file
module Ascii_util = Dw_engine.Ascii_util

type sink = To_db_table of string | To_file of string

exception Not_self_maintainable of string

let chunk_size = 240

let capture_schema =
  Schema.make
    [
      { Schema.name = "__seq"; ty = Value.Tint; nullable = false };
      { Schema.name = "txn"; ty = Value.Tint; nullable = false };
      { Schema.name = "part"; ty = Value.Tint; nullable = false };
      { Schema.name = "payload"; ty = Value.Tstring chunk_size; nullable = false };
    ]

type t = {
  db : Db.t;
  sink : sink;
  views : Spj_view.t list;
  replicas : bool;
  capture_images : bool;  (* force hybrid before-image capture *)
  mutable seq : int;
  mutable captured : Op_delta.t list;  (* newest first *)
  mutable captured_bytes : int;
}

let create ?(views = []) ?(replicas = true) ?(capture_images = false) db ~sink =
  (match sink with
   | To_db_table name -> (
       match Db.table_opt db name with
       | Some _ -> ()
       | None -> ignore (Db.create_table db ~name capture_schema : Table.t))
   | To_file name ->
     if not (Vfs.exists (Db.vfs db) name) then
       Vfs.close (Vfs.create (Db.vfs db) name));
  { db; sink; views; replicas; capture_images; seq = 0; captured = []; captured_bytes = 0 }

let captures_images t = t.capture_images

let schema_for_images t table =
  Option.map Table.schema (Db.table_opt t.db table)

let schema_of t table = schema_for_images t table

(* before images: the rows the statement is about to affect *)
let before_images_of t txn stmt =
  match stmt with
  | Ast.Update { table; where; _ } | Ast.Delete { table; where; _ } ->
    Db.select t.db txn table ?where ()
  | Ast.Insert _ | Ast.Select _ | Ast.Create_table _ -> []

(* The source engine stamps the timestamp column implicitly on UPDATE; the
   captured statement must carry that assignment explicitly or replaying
   it elsewhere would leave stale stamps.  (INSERT statements already
   carry the full tuple, which the source stamps to the same day.) *)
let reify_timestamp t stmt =
  match stmt with
  | Ast.Update ({ table; sets; _ } as u) -> (
      match Db.table_opt t.db table with
      | None -> stmt
      | Some tbl -> (
          match Table.ts_column tbl with
          | Some ts_col when not (List.mem_assoc ts_col sets) ->
            Ast.Update
              {
                u with
                sets =
                  sets @ [ (ts_col, Dw_relation.Expr.Lit (Value.Date (Db.current_day t.db))) ];
              }
          | Some _ | None -> stmt))
  | Ast.Insert ({ table; columns; rows } as i) -> (
      (* the source overwrites the timestamp literal the client supplied;
         rewrite the captured rows to the value the source will store *)
      match Db.table_opt t.db table with
      | None -> stmt
      | Some tbl -> (
          match Table.ts_column tbl with
          | None -> stmt
          | Some ts_col ->
            let schema = Table.schema tbl in
            let stamp = Value.Date (Db.current_day t.db) in
            let col_names =
              match columns with
              | Some cols -> cols
              | None ->
                List.map (fun c -> c.Dw_relation.Schema.name) (Dw_relation.Schema.columns schema)
            in
            (match List.find_index (fun c -> c = ts_col) col_names with
             | None -> stmt
             | Some idx ->
               let rows =
                 List.map (List.mapi (fun i v -> if i = idx then stamp else v)) rows
               in
               Ast.Insert { i with rows })))
  | Ast.Delete _ | Ast.Select _ | Ast.Create_table _ -> stmt

let write_to_sink t txn od =
  let line = Op_delta.encode_line ~schema_of:(schema_of t) od in
  match t.sink with
  | To_file name ->
    let file = Vfs.open_or_create (Db.vfs t.db) name in
    ignore (Vfs.append file (Bytes.of_string (line ^ "\n")) : int);
    Vfs.close file
  | To_db_table name ->
    (* chunk the line into transactionally-inserted capture rows *)
    let len = String.length line in
    let parts = max 1 ((len + chunk_size - 1) / chunk_size) in
    for part = 0 to parts - 1 do
      let chunk = String.sub line (part * chunk_size) (min chunk_size (len - (part * chunk_size))) in
      t.seq <- t.seq + 1;
      ignore
        (Db.insert t.db txn name
           [| Value.Int t.seq; Value.Int od.Op_delta.txn_id; Value.Int part; Value.Str chunk |]
          : Heap_file.rid)
    done

let exec_txn t stmts =
  (* reject configurations that cannot be maintained from any capture *)
  List.iter
    (fun stmt ->
      match Self_maintain.requirement ~views:t.views ~replicas:t.replicas stmt with
      | `Not_self_maintainable reason -> raise (Not_self_maintainable reason)
      | `Op_only | `Op_with_before_images -> ())
    stmts;
  let txn = Db.begin_txn t.db in
  let run () =
    let ops_rev = ref [] in
    let results_rev = ref [] in
    List.iter
      (fun stmt ->
        let stmt = reify_timestamp t stmt in
        let images =
          if t.capture_images then before_images_of t txn stmt
          else
            match Self_maintain.requirement ~views:t.views ~replicas:t.replicas stmt with
            | `Op_with_before_images -> before_images_of t txn stmt
            | `Op_only | `Not_self_maintainable _ -> []
        in
        let result = Db.exec t.db txn stmt in
        ops_rev := (stmt, images) :: !ops_rev;
        results_rev := result :: !results_rev)
      stmts;
    let od = Op_delta.with_before_images ~txn_id:(Db.txid txn) (List.rev !ops_rev) in
    write_to_sink t txn od;
    Db.commit t.db txn;
    t.captured <- od :: t.captured;
    t.captured_bytes <- t.captured_bytes + Op_delta.size_bytes ~schema_of:(schema_of t) od;
    Ok (List.rev !results_rev)
  in
  match run () with
  | result -> result
  | exception Invalid_argument msg ->
    Db.abort t.db txn;
    Error msg
  | exception Not_found ->
    Db.abort t.db txn;
    Error "unknown table"

let capture_units ~statements ~image_rows = float_of_int (statements + image_rows)
let work_units ~statements = float_of_int statements

let captured t = List.rev t.captured
let captured_bytes t = t.captured_bytes

let read_sink t =
  let decode_lines lines =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          match Op_delta.decode_line ~schema_of:(schema_of t) line with
          | Ok od -> go (od :: acc) rest
          | Error e -> Error e)
    in
    go [] lines
  in
  match t.sink with
  | To_file name ->
    let lines = ref [] in
    (match Ascii_util.iter_lines (Db.vfs t.db) name ~f:(fun l -> lines := l :: !lines) with
     | Ok _ -> decode_lines (List.rev !lines)
     | Error e -> Error e)
  | To_db_table name -> (
      match Db.table_opt t.db name with
      | None -> Error (Printf.sprintf "capture table %s missing" name)
      | Some tbl ->
        let rows = ref [] in
        Table.scan tbl (fun _ row -> rows := row :: !rows);
        let rows =
          List.sort
            (fun a b ->
              match a.(0), b.(0) with
              | Value.Int x, Value.Int y -> compare x y
              | _ -> 0)
            !rows
        in
        (* reassemble: part = 0 starts a new line *)
        let lines = ref [] in
        let current = Buffer.create 256 in
        let flush_current () =
          if Buffer.length current > 0 then begin
            lines := Buffer.contents current :: !lines;
            Buffer.clear current
          end
        in
        List.iter
          (fun row ->
            let part = match row.(2) with Value.Int p -> p | _ -> 0 in
            let payload = match row.(3) with Value.Str s -> s | _ -> "" in
            if part = 0 then flush_current ();
            Buffer.add_string current payload)
          rows;
        flush_current ();
        decode_lines (List.rev !lines))
