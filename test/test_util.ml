(* Tests for Dw_util: PRNG determinism, metrics (counters, gauges,
   histograms, timers, spans, sink), JSON, clock, formatting. *)

module Prng = Dw_util.Prng
module Metrics = Dw_util.Metrics
module Sim_clock = Dw_util.Sim_clock
module Fmt_util = Dw_util.Fmt_util
module Json = Dw_util.Json

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  check Alcotest.bool "different streams" true (Prng.int64 a <> Prng.int64 b)

let prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g 5 9 in
    check Alcotest.bool "in closed range" true (v >= 5 && v <= 9)
  done

let prng_split_independent () =
  let parent = Prng.create ~seed:3 in
  let child = Prng.split parent in
  (* child and parent produce different streams from here *)
  check Alcotest.bool "independent" true (Prng.int64 parent <> Prng.int64 child)

let prng_float_range () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Prng.float g 2.5 in
    check Alcotest.bool "float range" true (f >= 0.0 && f < 2.5)
  done

let prng_shuffle_permutation () =
  let g = Prng.create ~seed:5 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 50 Fun.id) sorted

let prng_alpha_string () =
  let g = Prng.create ~seed:9 in
  let s = Prng.alpha_string g 64 in
  check Alcotest.int "length" 64 (String.length s);
  String.iter (fun c -> check Alcotest.bool "lowercase" true (c >= 'a' && c <= 'z')) s

let metrics_basic () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 4;
  Metrics.add m "b" 10;
  check Alcotest.int "a" 5 (Metrics.get m "a");
  check Alcotest.int "b" 10 (Metrics.get m "b");
  check Alcotest.int "absent" 0 (Metrics.get m "zzz")

let metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  let before = Metrics.snapshot m in
  Metrics.add m "x" 2;
  Metrics.add m "y" 7;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "diff"
    [ ("x", 2); ("y", 7) ] d

let metrics_reset () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  Metrics.reset m;
  check Alcotest.int "reset" 0 (Metrics.get m "x")

(* regression: reset used to zero counters in place but keep the keys, so
   a later snapshot of a registry shared across experiments still listed
   every stale name.  Reset must clear entries of every kind. *)
let metrics_reset_clears_entries () =
  let m = Metrics.create () in
  Metrics.add m "x" 3;
  Metrics.set_gauge m "g" 2.0;
  Metrics.observe m "h" 0.5;
  Metrics.with_span m "s" (fun () -> ());
  Metrics.reset m;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "snapshot empty" []
    (Metrics.snapshot m);
  check Alcotest.int "gauges empty" 0 (List.length (Metrics.gauges m));
  check Alcotest.int "histograms empty" 0 (List.length (Metrics.histograms m));
  check Alcotest.int "spans cleared" 0 (List.length (Metrics.spans m));
  check Alcotest.int "counter gone" 0 (Metrics.get m "x")

let metrics_gauges () =
  let m = Metrics.create () in
  Metrics.set_gauge m "pool.capacity" 64.0;
  Metrics.set_gauge m "pool.capacity" 128.0;
  Metrics.set_gauge m "a" 1.5;
  check (Alcotest.float 0.0) "last write wins" 128.0 (Metrics.gauge m "pool.capacity");
  check (Alcotest.float 0.0) "absent gauge" 0.0 (Metrics.gauge m "zz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "sorted"
    [ ("a", 1.5); ("pool.capacity", 128.0) ]
    (Metrics.gauges m)

let metrics_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.incr m "n";
  (try
     Metrics.observe m "n" 1.0;
     Alcotest.fail "observe on a counter should raise"
   with Invalid_argument _ -> ());
  Metrics.observe m "h" 1.0;
  (try
     Metrics.set_gauge m "h" 1.0;
     Alcotest.fail "set_gauge on a histogram should raise"
   with Invalid_argument _ -> ())

(* ---------- histograms ---------- *)

let hist_empty_and_single () =
  let m = Metrics.create () in
  check (Alcotest.float 0.0) "absent percentile" 0.0 (Metrics.percentile m "h" 0.5);
  check Alcotest.int "absent count" 0 (Metrics.observed_count m "h");
  check Alcotest.bool "absent summary" true (Metrics.summary m "h" = None);
  Metrics.observe m "h" 0.0123;
  (* one sample: every percentile is that exact value (min/max clamping) *)
  List.iter
    (fun q ->
      check (Alcotest.float 1e-15) "single sample exact" 0.0123 (Metrics.percentile m "h" q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  match Metrics.summary m "h" with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    check Alcotest.int "count" 1 s.Metrics.count;
    check (Alcotest.float 1e-15) "sum" 0.0123 s.Metrics.sum;
    check (Alcotest.float 1e-15) "min=max" s.Metrics.vmin s.Metrics.vmax

let hist_overflow_edges () =
  let m = Metrics.create () in
  (* far beyond the last bucket (gamma^1024 = 2^128): the index clamps to
     the overflow bucket but min/max stay exact, and a one-sample
     percentile clamps back to the observed value *)
  Metrics.observe m "big" 1e300;
  check (Alcotest.float 0.0) "overflow p50 exact" 1e300 (Metrics.percentile m "big" 0.5);
  check (Alcotest.float 0.0) "overflow max exact" 1e300 (Metrics.percentile m "big" 1.0);
  (* non-positive samples land in the underflow bucket; min stays exact *)
  Metrics.observe m "mix" (-5.0);
  Metrics.observe m "mix" 0.0;
  Metrics.observe m "mix" 2.0;
  check (Alcotest.float 0.0) "min exact" (-5.0) (Metrics.percentile m "mix" 0.0);
  check (Alcotest.float 0.0) "max exact" 2.0 (Metrics.percentile m "mix" 1.0);
  let p50 = Metrics.percentile m "mix" 0.5 in
  check Alcotest.bool "p50 within observed range" true (p50 >= -5.0 && p50 <= 2.0)

let hist_bucket_error_bound () =
  let m = Metrics.create () in
  for i = 1 to 1000 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  (* 8 buckets per doubling: a percentile is the upper bound of its
     bucket, at most gamma = 2^(1/8) ~ 1.09x above the true value *)
  List.iter
    (fun (q, true_v) ->
      let v = Metrics.percentile m "lat" q in
      check Alcotest.bool
        (Printf.sprintf "p%.0f within one bucket of %g (got %g)" (q *. 100.0) true_v v)
        true
        (v >= true_v && v <= true_v *. 1.0906))
    [ (0.5, 500.0); (0.95, 950.0); (0.99, 990.0) ];
  let p q = Metrics.percentile m "lat" q in
  check Alcotest.bool "percentiles monotone" true
    (p 0.0 <= p 0.5 && p 0.5 <= p 0.95 && p 0.95 <= p 0.99 && p 0.99 <= p 1.0)

(* ---------- timers and spans (sim clock: deterministic durations) ---------- *)

let timer_sim_clock () =
  let m = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock m clk;
  let v = Metrics.time m "op" (fun () -> Sim_clock.advance clk 3; 42) in
  check Alcotest.int "result passed through" 42 v;
  check Alcotest.int "count" 1 (Metrics.observed_count m "op");
  check (Alcotest.float 1e-9) "sum" 3.0 (Metrics.observed_sum m "op");
  check (Alcotest.float 1e-9) "one-sample p50" 3.0 (Metrics.percentile m "op" 0.5);
  (* a raising body still observes its duration *)
  (try Metrics.time m "op" (fun () -> Sim_clock.advance clk 5; failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "count after raise" 2 (Metrics.observed_count m "op");
  check (Alcotest.float 1e-9) "sum after raise" 8.0 (Metrics.observed_sum m "op")

let spans_nesting () =
  let m = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock m clk;
  Metrics.with_span m "outer" (fun () ->
      Sim_clock.advance clk 1;
      Metrics.with_span m "inner" (fun () ->
          Sim_clock.advance clk 2;
          Metrics.incr m "rows");
      Sim_clock.advance clk 1);
  check Alcotest.int "depth balanced" 0 (Metrics.span_depth m);
  (match Metrics.spans m with
   | [ inner; outer ] ->
     check Alcotest.string "inner name" "inner" inner.Metrics.span_name;
     check (Alcotest.option Alcotest.string) "inner parent" (Some "outer")
       inner.Metrics.span_parent;
     check (Alcotest.float 1e-9) "inner duration" 2.0 inner.Metrics.span_duration;
     check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "inner deltas"
       [ ("rows", 1) ] inner.Metrics.span_deltas;
     check Alcotest.string "outer name" "outer" outer.Metrics.span_name;
     check (Alcotest.option Alcotest.string) "outer parent" None outer.Metrics.span_parent;
     check (Alcotest.float 1e-9) "outer duration" 4.0 outer.Metrics.span_duration
   | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* finishing also observes the duration into a histogram of the name *)
  check Alcotest.int "inner observed" 1 (Metrics.observed_count m "inner");
  check (Alcotest.float 1e-9) "inner observed sum" 2.0 (Metrics.observed_sum m "inner")

let span_finish_idempotent () =
  let m = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock m clk;
  let sp = Metrics.start_span m "once" in
  Sim_clock.advance clk 2;
  Metrics.finish_span sp;
  Metrics.finish_span sp;
  check Alcotest.int "one record" 1 (List.length (Metrics.spans m));
  check Alcotest.int "one observation" 1 (Metrics.observed_count m "once");
  check Alcotest.int "depth" 0 (Metrics.span_depth m)

(* property: arbitrarily nested with_span calls — some unwinding through
   exceptions — always leave the stack balanced and record one span per
   entered region *)
let prop_span_balance =
  QCheck.Test.make ~name:"span nesting stays balanced" ~count:100
    QCheck.(list (int_bound 5))
    (fun depths ->
      let m = Metrics.create () in
      let clk = Sim_clock.create () in
      Metrics.use_sim_clock m clk;
      List.iter
        (fun d ->
          let rec nest k =
            if k = 0 then Sim_clock.advance clk 1
            else Metrics.with_span m (Printf.sprintf "s%d" k) (fun () -> nest (k - 1))
          in
          if d land 1 = 1 then (
            (* odd depths raise out of the innermost frame *)
            try
              Metrics.with_span m "err" (fun () ->
                  nest d;
                  failwith "unwind")
            with Failure _ -> ())
          else nest d)
        depths;
      let expected =
        List.fold_left (fun acc d -> acc + d + (if d land 1 = 1 then 1 else 0)) 0 depths
      in
      Metrics.span_depth m = 0 && List.length (Metrics.spans m) = expected)

(* ---------- recording sink ---------- *)

let metrics_sink_mirrors () =
  let s = Metrics.create () in
  Metrics.with_sink (Some s) (fun () ->
      let m = Metrics.create () in
      let clk = Sim_clock.create () in
      Metrics.use_sim_clock m clk;
      Metrics.incr m "c";
      Metrics.observe m "h" 0.25;
      Metrics.with_span m "sp" (fun () -> Sim_clock.advance clk 1);
      check Alcotest.int "counter mirrored" 1 (Metrics.get s "c");
      check Alcotest.int "histogram mirrored" 1 (Metrics.observed_count s "h");
      check Alcotest.int "span record mirrored" 1 (List.length (Metrics.spans s));
      (* mutating the sink itself stays local: no recursion *)
      Metrics.incr s "own";
      check Alcotest.int "sink-local counter" 1 (Metrics.get s "own"));
  let m2 = Metrics.create () in
  Metrics.incr m2 "c2";
  check Alcotest.int "not mirrored after unset" 0 (Metrics.get s "c2")

let metrics_to_json () =
  let m = Metrics.create () in
  let clk = Sim_clock.create () in
  Metrics.use_sim_clock m clk;
  Metrics.add m "n" 7;
  Metrics.set_gauge m "g" 1.5;
  Metrics.with_span m "work" (fun () -> Sim_clock.advance clk 2);
  let j = Metrics.to_json m in
  let get path =
    List.fold_left (fun j k -> Option.get (Json.member k j)) j path
  in
  check Alcotest.bool "counter" true (get [ "counters"; "n" ] = Json.Int 7);
  check Alcotest.bool "gauge" true (Json.to_number (get [ "gauges"; "g" ]) = Some 1.5);
  check Alcotest.bool "histogram count" true
    (Json.member "count" (get [ "histograms"; "work" ]) = Some (Json.Int 1));
  match Json.to_list (get [ "spans" ]) with
  | Some [ sp ] ->
    check Alcotest.bool "span name" true (Json.member "name" sp = Some (Json.String "work"));
    check Alcotest.bool "span count" true (Json.member "count" sp = Some (Json.Int 1))
  | _ -> Alcotest.fail "expected one span rollup entry"

(* ---------- json ---------- *)

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5; Json.Float 2.0 ]);
        ("s", Json.String "he\"llo\n\ttab\\");
        ("empty", Json.Obj []);
        ("nested", Json.Obj [ ("l", Json.List []) ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty doc) with
      | Ok j -> check Alcotest.bool "roundtrip equal" true (j = doc)
      | Error e -> Alcotest.failf "roundtrip parse error: %s" e)
    [ false; true ]

let json_special_floats () =
  (* JSON has no nan/inf: they serialize as null so documents re-parse *)
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Float Float.infinity))

let json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "" ]

let json_accessors () =
  match Json.of_string {|{"x": 3, "y": [1.5, "s"], "z": null}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j ->
    check Alcotest.bool "member x" true (Json.member "x" j = Some (Json.Int 3));
    check Alcotest.bool "member absent" true (Json.member "w" j = None);
    check Alcotest.bool "to_number int" true (Json.to_number (Json.Int 3) = Some 3.0);
    (match Json.member "y" j with
     | Some (Json.List [ f; s ]) ->
       check Alcotest.bool "float elem" true (Json.to_number f = Some 1.5);
       check Alcotest.bool "string elem" true (Json.to_str s = Some "s")
     | _ -> Alcotest.fail "y should be a 2-list")

let clock_basic () =
  let c = Sim_clock.create () in
  check Alcotest.int "t0" 0 (Sim_clock.now c);
  Sim_clock.advance c 5;
  Sim_clock.advance c 3;
  check Alcotest.int "t8" 8 (Sim_clock.now c)

let clock_spans () =
  let c = Sim_clock.create () in
  let r = Sim_clock.Span_recorder.create c in
  Sim_clock.advance c 10;
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 4;
  Sim_clock.Span_recorder.close_span r;
  Sim_clock.advance c 100;
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 6;
  Sim_clock.Span_recorder.close_span r;
  check Alcotest.int "total" 10 (Sim_clock.Span_recorder.total r);
  check Alcotest.int "count" 2 (Sim_clock.Span_recorder.count r)

let clock_open_span_counts () =
  let c = Sim_clock.create () in
  let r = Sim_clock.Span_recorder.create c in
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 3;
  check Alcotest.int "open span total" 3 (Sim_clock.Span_recorder.total r);
  (* double open is a no-op *)
  Sim_clock.Span_recorder.open_span r;
  Sim_clock.advance c 2;
  Sim_clock.Span_recorder.close_span r;
  check Alcotest.int "total after close" 5 (Sim_clock.Span_recorder.total r)

let human_bytes () =
  check Alcotest.string "b" "100B" (Fmt_util.human_bytes 100);
  check Alcotest.string "kb" "1.5KB" (Fmt_util.human_bytes 1536);
  check Alcotest.string "mb" "2MB" (Fmt_util.human_bytes (2 * 1024 * 1024))

let human_duration () =
  check Alcotest.string "ms" "250ms" (Fmt_util.human_duration 0.25);
  check Alcotest.string "s" "2.50s" (Fmt_util.human_duration 2.5);
  check Alcotest.string "min" "2min 5s" (Fmt_util.human_duration 125.0);
  check Alcotest.string "hr" "1hr 8min" (Fmt_util.human_duration 4080.0)

let table_render () =
  let s = Fmt_util.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 4 (List.length lines);
  List.iter
    (fun line -> check Alcotest.bool "aligned" true (String.length line >= 6))
    lines

(* ---------- backoff ---------- *)

module Backoff = Dw_util.Backoff
module Breaker = Dw_util.Breaker

let backoff_deterministic () =
  let mk () = Backoff.create ~sleep:ignore ~base_s:0.5 ~seed:99 () in
  let a = mk () and b = mk () in
  for attempt = 0 to 9 do
    check (Alcotest.float 0.0) "same pause sequence" (Backoff.pause_s a ~attempt)
      (Backoff.pause_s b ~attempt)
  done

let backoff_equal_jitter_bounds () =
  (* attempt n pauses in [base/2 * 2^n, base * 2^n): half fixed, half
     uniform jitter — never sooner than half the nominal pause *)
  let p = Backoff.create ~sleep:ignore ~base_s:1.0 ~seed:3 () in
  for attempt = 0 to 6 do
    let base = 2.0 ** float_of_int attempt in
    let v = Backoff.pause_s p ~attempt in
    check Alcotest.bool "pause in [base/2, base)" true (v >= base /. 2.0 && v < base)
  done

let backoff_cap () =
  let p = Backoff.create ~sleep:ignore ~max_s:4.0 ~base_s:1.0 ~seed:5 () in
  for attempt = 0 to 20 do
    check Alcotest.bool "pause capped at max_s" true (Backoff.pause_s p ~attempt <= 4.0)
  done

let backoff_zero_base () =
  let slept = ref 0.0 in
  let p = Backoff.create ~sleep:(fun s -> slept := !slept +. s) ~base_s:0.0 ~seed:1 () in
  for attempt = 0 to 5 do
    check (Alcotest.float 0.0) "no pause" 0.0 (Backoff.wait p ~attempt)
  done;
  check (Alcotest.float 0.0) "never slept" 0.0 !slept

let backoff_wait_sleeps () =
  let slept = ref 0.0 in
  let p = Backoff.create ~sleep:(fun s -> slept := !slept +. s) ~base_s:0.25 ~seed:11 () in
  let p0 = Backoff.wait p ~attempt:0 in
  let p1 = Backoff.wait p ~attempt:1 in
  check (Alcotest.float 1e-9) "slept exactly the returned pauses" (p0 +. p1) !slept

let backoff_rejects_bad_args () =
  (match Backoff.create ~base_s:(-1.0) ~seed:1 () with
   | (_ : Backoff.t) -> Alcotest.fail "negative base accepted"
   | exception Invalid_argument _ -> ());
  let p = Backoff.create ~sleep:ignore ~base_s:1.0 ~seed:1 () in
  match Backoff.pause_s p ~attempt:(-1) with
  | (_ : float) -> Alcotest.fail "negative attempt accepted"
  | exception Invalid_argument _ -> ()

(* ---------- circuit breaker (fake clock) ---------- *)

let breaker_cfg =
  {
    Breaker.failure_threshold = 2;
    reset_timeout_s = 8.0;
    probe_successes = 1;
    max_reset_timeout_s = 64.0;
    seed = 21;
  }

let mk_breaker () =
  let now = ref 0.0 in
  let b = Breaker.create ~config:breaker_cfg ~clock:(fun () -> !now) () in
  (b, now)

let breaker_trips_at_threshold () =
  let b, _now = mk_breaker () in
  check Alcotest.bool "starts closed" true (Breaker.state b = Breaker.Closed);
  check Alcotest.bool "closed allows" true (Breaker.allow b);
  Breaker.record_failure b;
  check Alcotest.int "one consecutive failure" 1 (Breaker.consecutive_failures b);
  check Alcotest.bool "below threshold stays closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_success b;
  check Alcotest.int "success resets the count" 0 (Breaker.consecutive_failures b);
  Breaker.record_failure b;
  Breaker.record_failure b;
  check Alcotest.bool "threshold trips open" true (Breaker.state b = Breaker.Open);
  check Alcotest.int "one trip" 1 (Breaker.trips b);
  check Alcotest.bool "open refuses before the dwell" false (Breaker.allow b)

let breaker_dwell_then_probe_heals () =
  let b, now = mk_breaker () in
  Breaker.record_failure b;
  Breaker.record_failure b;
  (* first dwell is jittered in [4, 8): the full nominal dwell always
     admits the probe, time zero never does *)
  check Alcotest.bool "refused at trip time" false (Breaker.allow b);
  now := 8.0;
  check Alcotest.bool "probe admitted after the dwell" true (Breaker.allow b);
  check Alcotest.bool "half-open" true (Breaker.state b = Breaker.Half_open);
  check Alcotest.int "one probe" 1 (Breaker.probes b);
  Breaker.record_success b;
  check Alcotest.bool "probe success closes" true (Breaker.state b = Breaker.Closed)

let breaker_failed_probe_doubles_dwell () =
  let b, now = mk_breaker () in
  Breaker.record_failure b;
  Breaker.record_failure b;
  now := 8.0;
  check Alcotest.bool "probe admitted" true (Breaker.allow b);
  Breaker.record_failure b;
  check Alcotest.bool "failed probe reopens" true (Breaker.state b = Breaker.Open);
  check Alcotest.int "reopen counts as a trip" 2 (Breaker.trips b);
  (* second dwell is jittered in [8, 16): not elapsed just short of the
     doubled nominal floor, always elapsed at the doubled ceiling *)
  now := 8.0 +. 7.999;
  check Alcotest.bool "still refused inside the doubled dwell" false (Breaker.allow b);
  now := 8.0 +. 16.0;
  check Alcotest.bool "re-probe after the doubled dwell" true (Breaker.allow b);
  Breaker.record_success b;
  check Alcotest.bool "closes again" true (Breaker.state b = Breaker.Closed);
  (* closing resets the dwell backoff: the next trip dwells [4, 8) again *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  now := !now +. 8.0;
  check Alcotest.bool "dwell backoff reset by the close" true (Breaker.allow b)

let breaker_reset_and_force_open () =
  let b, _now = mk_breaker () in
  Breaker.force_open b;
  check Alcotest.bool "force_open trips" true (Breaker.state b = Breaker.Open);
  check Alcotest.bool "refused while quarantined" false (Breaker.allow b);
  Breaker.reset b;
  check Alcotest.bool "reset closes" true (Breaker.state b = Breaker.Closed);
  check Alcotest.bool "allowed after reset" true (Breaker.allow b);
  check Alcotest.int "counts cleared" 0 (Breaker.consecutive_failures b)

let suite =
  [
    test "prng deterministic" prng_deterministic;
    test "prng seed sensitivity" prng_seed_sensitivity;
    test "prng bounds" prng_bounds;
    test "prng split independent" prng_split_independent;
    test "prng float range" prng_float_range;
    test "prng shuffle permutation" prng_shuffle_permutation;
    test "prng alpha string" prng_alpha_string;
    test "metrics basic" metrics_basic;
    test "metrics snapshot diff" metrics_snapshot_diff;
    test "metrics reset" metrics_reset;
    test "metrics reset clears entries" metrics_reset_clears_entries;
    test "metrics gauges" metrics_gauges;
    test "metrics kind mismatch" metrics_kind_mismatch;
    test "histogram empty/single sample" hist_empty_and_single;
    test "histogram overflow edges" hist_overflow_edges;
    test "histogram bucket error bound" hist_bucket_error_bound;
    test "timer with sim clock" timer_sim_clock;
    test "spans nesting" spans_nesting;
    test "span finish idempotent" span_finish_idempotent;
    QCheck_alcotest.to_alcotest prop_span_balance;
    test "metrics sink mirrors" metrics_sink_mirrors;
    test "metrics to_json" metrics_to_json;
    test "json roundtrip" json_roundtrip;
    test "json special floats" json_special_floats;
    test "json rejects malformed" json_rejects_malformed;
    test "json accessors" json_accessors;
    test "clock basic" clock_basic;
    test "clock spans" clock_spans;
    test "clock open span counts" clock_open_span_counts;
    test "human bytes" human_bytes;
    test "human duration" human_duration;
    test "table render" table_render;
    test "backoff deterministic under a seed" backoff_deterministic;
    test "backoff equal-jitter bounds" backoff_equal_jitter_bounds;
    test "backoff respects max_s" backoff_cap;
    test "backoff zero base never pauses" backoff_zero_base;
    test "backoff wait sleeps the drawn pause" backoff_wait_sleeps;
    test "backoff rejects bad arguments" backoff_rejects_bad_args;
    test "breaker trips at the failure threshold" breaker_trips_at_threshold;
    test "breaker dwell then probe heals" breaker_dwell_then_probe_heals;
    test "breaker failed probe doubles the dwell" breaker_failed_probe_doubles_dwell;
    test "breaker reset and force_open" breaker_reset_and_force_open;
  ]
