(* Bechamel micro-benchmarks of the primitives the experiments above are
   built on: record codecs, B+tree ops, heap inserts, SQL parse/print,
   logged transactional inserts, trigger-burdened inserts, Op-Delta
   capture.  These make the macro-level shapes explainable: e.g. Figure 2
   ~100% insert-trigger overhead is literally one extra logged insert. *)

open Bechamel
open Toolkit
module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Codec = Dw_relation.Codec
module Btree = Dw_storage.Btree
module Value = Dw_relation.Value
module Heap_file = Dw_storage.Heap_file
module Trigger_extract = Dw_core.Trigger_extract
module Opdelta_capture = Dw_core.Opdelta_capture
module Prng = Dw_util.Prng

let schema = Workload.parts_schema
let sample_tuple = Workload.gen_part (Prng.create ~seed:1) ~id:1 ~day:0
let sample_record = Codec.encode_binary schema sample_tuple
let sample_line = Codec.encode_ascii schema sample_tuple
let sample_sql = "UPDATE parts SET qty = qty + 1 WHERE part_id >= 10 AND part_id < 20"
let sample_stmt = Result.get_ok (Dw_sql.Parser.parse sample_sql)

let test_encode_binary =
  Test.make ~name:"codec: encode_binary" (Staged.stage (fun () -> Codec.encode_binary schema sample_tuple))

let test_decode_binary =
  Test.make ~name:"codec: decode_binary" (Staged.stage (fun () -> Codec.decode_binary schema sample_record 0))

let test_encode_ascii =
  Test.make ~name:"codec: encode_ascii" (Staged.stage (fun () -> Codec.encode_ascii schema sample_tuple))

let test_decode_ascii =
  Test.make ~name:"codec: decode_ascii" (Staged.stage (fun () -> Codec.decode_ascii schema sample_line))

let test_sql_parse =
  Test.make ~name:"sql: parse" (Staged.stage (fun () -> Dw_sql.Parser.parse sample_sql))

let test_sql_print =
  Test.make ~name:"sql: print" (Staged.stage (fun () -> Dw_sql.Printer.to_string sample_stmt))

let test_btree_find =
  let tree = Btree.create () in
  for i = 0 to 9999 do
    Btree.insert tree [| Value.Int i |] i
  done;
  let i = ref 0 in
  Test.make ~name:"btree: find in 10k"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod 10000;
         Btree.find tree [| Value.Int !i |]))

let test_btree_insert_delete =
  let tree = Btree.create () in
  for i = 0 to 9999 do
    Btree.insert tree [| Value.Int i |] i
  done;
  let i = ref 10000 in
  Test.make ~name:"btree: insert+remove"
    (Staged.stage (fun () ->
         incr i;
         Btree.insert tree [| Value.Int !i |] !i;
         ignore (Btree.remove tree [| Value.Int !i |] : bool)))

(* logged transactional single-row insert, without and with the capture
   trigger, and with Op-Delta capture: the literal cost triangle behind
   Figures 2 and 3 *)
let test_txn_insert =
  let db = Bench_support.fresh_source ~rows:0 () in
  let next = ref 0 in
  Test.make ~name:"engine: logged txn insert"
    (Staged.stage (fun () ->
         incr next;
         Db.with_txn db (fun txn ->
             ignore
               (Db.insert db txn "parts"
                  (Workload.gen_part (Prng.create ~seed:!next) ~id:!next ~day:0)
                 : Heap_file.rid))))

let test_txn_insert_trigger =
  let db = Bench_support.fresh_source ~rows:0 () in
  let _ = Trigger_extract.install db ~table:"parts" in
  let next = ref 0 in
  Test.make ~name:"engine: logged txn insert + trigger"
    (Staged.stage (fun () ->
         incr next;
         Db.with_txn db (fun txn ->
             ignore
               (Db.insert db txn "parts"
                  (Workload.gen_part (Prng.create ~seed:!next) ~id:!next ~day:0)
                 : Heap_file.rid))))

let test_txn_insert_opdelta =
  let db = Bench_support.fresh_source ~rows:0 () in
  let cap = Opdelta_capture.create db ~sink:(Opdelta_capture.To_file "op.log") in
  let next = ref 0 in
  Test.make ~name:"engine: insert txn via op-delta wrapper (file log)"
    (Staged.stage (fun () ->
         incr next;
         match
           Opdelta_capture.exec_txn cap
             (Workload.insert_parts_txn ~seed:!next ~first_id:(1_000_000 + (!next * 4)) ~size:1
                ~day:0 ())
         with
         | Ok _ -> ()
         | Error e -> failwith e))

let tests =
  [
    test_encode_binary;
    test_decode_binary;
    test_encode_ascii;
    test_decode_ascii;
    test_sql_parse;
    test_sql_print;
    test_btree_find;
    test_btree_insert_delete;
    test_txn_insert;
    test_txn_insert_trigger;
    test_txn_insert_opdelta;
  ]

let run () =
  Bench_support.section "MICRO: bechamel micro-benchmarks";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let results =
    List.map
      (fun test ->
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        let est =
          Hashtbl.fold
            (fun _ ols_result acc ->
              match Analyze.OLS.estimates ols_result with
              | Some (e :: _) -> e :: acc
              | Some [] | None -> acc)
            analyzed []
        in
        (name, est))
      tests
  in
  Printf.printf "%-55s %15s\n%s\n" "benchmark" "ns/run" (String.make 72 '-');
  List.iter
    (fun (name, est) ->
      match est with
      | e :: _ -> Printf.printf "%-55s %15.1f\n" name e
      | [] -> Printf.printf "%-55s %15s\n" name "n/a")
    results
