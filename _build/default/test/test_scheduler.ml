(* Tests for Dw_engine.Scheduler: effect-based cooperative sessions over
   the real engine — interleaving, lock blocking, deadlock surfacing, and
   the batch-vs-online availability contrast with real 2PL. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Scheduler = Dw_engine.Scheduler
module Workload = Dw_workload.Workload

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let mk_db () =
  let db = Db.create ~vfs:(Vfs.in_memory ()) ~name:"db" () in
  let _ = Workload.create_parts_table db in
  db

let exec db txn stmt = ignore (Db.exec db txn stmt : Db.exec_result)

let report_for name (r : Scheduler.report) =
  List.find (fun s -> s.Scheduler.session = name) r.Scheduler.sessions

let sessions_interleave () =
  let db = mk_db () in
  Workload.load_parts db ~rows:50 ();
  let order = ref [] in
  let reader label =
    {
      Scheduler.name = label;
      start_at = 0;
      work =
        (fun () ->
          for _ = 1 to 3 do
            Db.with_txn db (fun txn -> ignore (Db.select db txn "parts" ()));
            order := label :: !order
          done);
    }
  in
  let r = Scheduler.run db [ reader "a"; reader "b" ] in
  check Alcotest.int "both finished" 2
    (List.length (List.filter (fun s -> s.Scheduler.failed = None) r.Scheduler.sessions));
  (* cooperative round-robin: the completion order alternates *)
  let sequence = List.rev !order in
  check Alcotest.bool "interleaved" true
    (match sequence with
     | "a" :: "b" :: _ -> true
     | "b" :: "a" :: _ -> true
     | _ -> false)

let writer_blocks_reader () =
  let db = mk_db () in
  Workload.load_parts db ~rows:50 ();
  (* writer: one long transaction of 6 update statements; reader arrives
     during it and must wait for commit *)
  let writer =
    {
      Scheduler.name = "writer";
      start_at = 0;
      work =
        (fun () ->
          Db.with_txn db (fun txn ->
              for i = 0 to 5 do
                exec db txn (Workload.update_parts_stmt ~first_id:(1 + (i * 5)) ~size:3)
              done));
    }
  in
  let reader =
    {
      Scheduler.name = "reader";
      start_at = 1;
      work = (fun () -> Db.with_txn db (fun txn -> ignore (Db.select db txn "parts" ())));
    }
  in
  let r = Scheduler.run db [ writer; reader ] in
  let w = report_for "writer" r and rd = report_for "reader" r in
  check Alcotest.bool "no failures" true (w.Scheduler.failed = None && rd.Scheduler.failed = None);
  check Alcotest.bool "reader was blocked" true (rd.Scheduler.blocked_slices > 0);
  check Alcotest.bool "reader finished after writer" true
    (rd.Scheduler.finished >= w.Scheduler.finished)

let readers_share () =
  let db = mk_db () in
  Workload.load_parts db ~rows:50 ();
  let reader label start_at =
    {
      Scheduler.name = label;
      start_at;
      work =
        (fun () ->
          Db.with_txn db (fun txn ->
              for _ = 1 to 3 do
                ignore (Db.select db txn "parts" ())
              done));
    }
  in
  let r = Scheduler.run db [ reader "r1" 0; reader "r2" 0; reader "r3" 1 ] in
  List.iter
    (fun s -> check Alcotest.int (s.Scheduler.session ^ " never blocked") 0 s.Scheduler.blocked_slices)
    r.Scheduler.sessions

let deadlock_surfaces () =
  let db = mk_db () in
  Workload.load_parts db ~rows:10 ();
  let _ = Db.create_table db ~name:"other" Workload.parts_schema in
  Db.with_txn db (fun txn ->
      ignore (Db.insert db txn "other" (Workload.gen_part (Dw_util.Prng.create ~seed:1) ~id:1 ~day:0)));
  (* t1 locks parts then other; t2 locks other then parts *)
  let t1 =
    {
      Scheduler.name = "t1";
      start_at = 0;
      work =
        (fun () ->
          Db.with_txn db (fun txn ->
              exec db txn (Workload.update_parts_stmt ~first_id:1 ~size:1);
              ignore
                (Db.update_where db txn "other" ~set:[ ("qty", Dw_relation.Expr.Lit (Value.Int 0)) ]
                   ~where:None)));
    }
  in
  let t2 =
    {
      Scheduler.name = "t2";
      start_at = 0;
      work =
        (fun () ->
          Db.with_txn db (fun txn ->
              ignore
                (Db.update_where db txn "other" ~set:[ ("qty", Dw_relation.Expr.Lit (Value.Int 1)) ]
                   ~where:None);
              exec db txn (Workload.update_parts_stmt ~first_id:1 ~size:1)));
    }
  in
  let r = Scheduler.run db [ t1; t2 ] in
  let failures =
    List.filter (fun s -> s.Scheduler.failed <> None) r.Scheduler.sessions
  in
  (* exactly one of the two is chosen as the deadlock victim and aborted *)
  check Alcotest.int "one victim" 1 (List.length failures);
  (match failures with
   | [ victim ] ->
     check Alcotest.bool "deadlock abort" true
       (match victim.Scheduler.failed with
        | Some msg ->
          (try ignore (Str.search_forward (Str.regexp "Deadlock") msg 0); true
           with Not_found -> false)
        | None -> false)
   | _ -> ());
  (* the survivor's work is committed and the victim rolled back *)
  check Alcotest.int "table intact" 10 (Table.row_count (Db.table db "parts"))

(* the W2 story with real locks: batch integration starves a concurrent
   reader for its whole duration; per-transaction integration bounds it *)
let batch_vs_online_with_real_locks () =
  let run_mode online =
    let db = mk_db () in
    Workload.load_parts db ~rows:100 ();
    let integrate =
      {
        Scheduler.name = "integrator";
        start_at = 0;
        work =
          (fun () ->
            let apply_one i txn =
              exec db txn (Workload.update_parts_stmt ~first_id:(1 + (i * 7)) ~size:3)
            in
            if online then
              for i = 0 to 9 do
                Db.with_txn db (fun txn -> apply_one i txn)
              done
            else
              Db.with_txn db (fun txn ->
                  for i = 0 to 9 do
                    apply_one i txn
                  done));
      }
    in
    let reader =
      {
        Scheduler.name = "reader";
        start_at = 2;
        work = (fun () -> Db.with_txn db (fun txn -> ignore (Db.select db txn "parts" ())));
      }
    in
    let r = Scheduler.run db [ integrate; reader ] in
    (report_for "reader" r).Scheduler.blocked_slices
  in
  let batch_wait = run_mode false in
  let online_wait = run_mode true in
  check Alcotest.bool "batch starves the reader longer" true (batch_wait > online_wait);
  check Alcotest.bool "online wait is short" true (online_wait <= 2)

let empty_and_trivial () =
  let db = mk_db () in
  let r = Scheduler.run db [] in
  check Alcotest.int "empty run" 0 r.Scheduler.total_slices;
  (* a session that raises immediately is recorded, not propagated *)
  let r =
    Scheduler.run db
      [ { Scheduler.name = "boom"; start_at = 0; work = (fun () -> failwith "kaput") } ]
  in
  (match (List.hd r.Scheduler.sessions).Scheduler.failed with
   | Some msg -> check Alcotest.bool "failure recorded" true (String.length msg > 0)
   | None -> Alcotest.fail "expected failure");
  (* hooks were restored: plain Db use outside the scheduler still works *)
  Db.with_txn db (fun txn -> ignore (Db.select db txn "parts" ()))

let future_arrival_jump () =
  let db = mk_db () in
  Workload.load_parts db ~rows:5 ();
  let ran = ref false in
  let r =
    Scheduler.run db
      [ { Scheduler.name = "late"; start_at = 50;
          work = (fun () -> Db.with_txn db (fun txn ->
              ran := true;
              ignore (Db.select db txn "parts" ()))) } ]
  in
  check Alcotest.bool "late session ran" true !ran;
  check Alcotest.bool "clock jumped to arrival" true (r.Scheduler.total_slices >= 50)

let suite =
  [
    test "sessions interleave" sessions_interleave;
    test "writer blocks reader" writer_blocks_reader;
    test "readers share" readers_share;
    test "deadlock surfaces" deadlock_surfaces;
    test "batch vs online with real locks" batch_vs_online_with_real_locks;
    test "empty and trivial sessions" empty_and_trivial;
    test "future arrival jump" future_arrival_jump;
  ]
