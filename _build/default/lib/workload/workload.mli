(** Deterministic workload generation matching the paper's experimental
    setup: a PARTS-style table of fixed 100-byte records, and OLTP
    transactions of parameterised size (the number of affected records,
    swept from 10 to 10 000 in Figures 2/3 and Table 4). *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Ast = Dw_sql.Ast
module Db = Dw_engine.Db
module Prng = Dw_util.Prng

val parts_schema : Schema.t
(** [part_id INT KEY, descr STRING(65), qty INT, price FLOAT,
    last_modified DATE] — exactly 100 bytes per encoded record. *)

val parts_table : string
(** ["parts"]. *)

val gen_part : Prng.t -> id:int -> day:int -> Tuple.t

val create_parts_table : Db.t -> Dw_engine.Table.t
(** With [last_modified] as the maintained timestamp column. *)

val load_parts : ?seed:int -> Db.t -> rows:int -> unit -> unit
(** Bulk-populate via the direct loader path (fast, unlogged), ids
    [1..rows], stamped with the database's current day. *)

val insert_parts_txn : ?seed:int -> first_id:int -> size:int -> day:int -> unit -> Ast.stmt list
(** [size] single-row INSERT statements — one source transaction. *)

val update_parts_stmt : first_id:int -> size:int -> Ast.stmt
(** One UPDATE statement whose range predicate affects exactly the [size]
    ids starting at [first_id] (when they exist). *)

val delete_parts_stmt : first_id:int -> size:int -> Ast.stmt

(** Mixed workload for soak-style tests: *)

type op = Mix_insert of int | Mix_update of int * int | Mix_delete of int * int
(** [Mix_insert first_id] (single row); [Mix_update (first_id, size)];
    [Mix_delete (first_id, size)]. *)

val gen_mix :
  Prng.t -> existing_ids:int -> txns:int -> max_txn_size:int -> op list
(** Deterministic mix of operations over id space [1..existing_ids],
    inserts beyond it. *)

val op_to_stmts : ?seed:int -> day:int -> op -> Ast.stmt list
