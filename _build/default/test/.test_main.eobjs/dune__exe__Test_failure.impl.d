test/test_failure.ml: Alcotest Dw_engine Dw_relation Dw_storage Dw_transport Dw_txn Dw_util Dw_workload List Result
