lib/relation/value.ml: Bool Buffer Float Format Int Printf String
