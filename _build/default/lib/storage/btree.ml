module Tuple = Dw_relation.Tuple

(* Nodes hold up to [branching] keys; leaves hold key/value pairs and a
   next-leaf link.  Internal nodes hold n keys and n+1 children where
   children.(i) covers keys < keys.(i) and children.(n) covers the rest
   (right-biased separators: keys.(i) is the smallest key of the subtree
   children.(i+1)). *)

type 'a node =
  | Leaf of 'a leaf
  | Internal of 'a internal

and 'a leaf = {
  mutable keys : Tuple.t array;
  mutable values : 'a array;
  mutable next : 'a leaf option;
}

and 'a internal = {
  mutable ikeys : Tuple.t array;
  mutable children : 'a node array;
}

type 'a t = {
  branching : int;
  mutable root : 'a node option;
  mutable cardinal : int;
}

let create ?(branching = 32) () =
  if branching < 4 || branching mod 2 <> 0 then
    invalid_arg "Btree.create: branching must be even and >= 4";
  { branching; root = None; cardinal = 0 }

let cardinal t = t.cardinal

(* index of first key >= k, by binary search *)
let lower_bound keys k =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Tuple.compare keys.(mid) k < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* child index to descend into for key k *)
let child_index ikeys k =
  let n = Array.length ikeys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Tuple.compare k ikeys.(mid) < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 n

let rec find_leaf node k =
  match node with
  | Leaf leaf -> leaf
  | Internal node -> find_leaf node.children.(child_index node.ikeys k) k

let find t k =
  match t.root with
  | None -> None
  | Some root ->
    let leaf = find_leaf root k in
    let i = lower_bound leaf.keys k in
    if i < Array.length leaf.keys && Tuple.compare leaf.keys.(i) k = 0 then Some leaf.values.(i)
    else None

let mem t k = find t k <> None

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* result of inserting below: either done, or the child split producing a
   new right sibling with separator key *)
type 'a split = No_split | Split of Tuple.t * 'a node

let rec insert_node t node k v =
  match node with
  | Leaf leaf ->
    let i = lower_bound leaf.keys k in
    if i < Array.length leaf.keys && Tuple.compare leaf.keys.(i) k = 0 then begin
      leaf.values.(i) <- v;
      No_split
    end
    else begin
      leaf.keys <- array_insert leaf.keys i k;
      leaf.values <- array_insert leaf.values i v;
      t.cardinal <- t.cardinal + 1;
      if Array.length leaf.keys <= t.branching then No_split
      else begin
        let mid = Array.length leaf.keys / 2 in
        let right =
          {
            keys = Array.sub leaf.keys mid (Array.length leaf.keys - mid);
            values = Array.sub leaf.values mid (Array.length leaf.values - mid);
            next = leaf.next;
          }
        in
        leaf.keys <- Array.sub leaf.keys 0 mid;
        leaf.values <- Array.sub leaf.values 0 mid;
        leaf.next <- Some right;
        Split (right.keys.(0), Leaf right)
      end
    end
  | Internal node ->
    let ci = child_index node.ikeys k in
    (match insert_node t node.children.(ci) k v with
     | No_split -> No_split
     | Split (sep, new_child) ->
       node.ikeys <- array_insert node.ikeys ci sep;
       node.children <- array_insert node.children (ci + 1) new_child;
       if Array.length node.ikeys <= t.branching then No_split
       else begin
         let mid = Array.length node.ikeys / 2 in
         let sep_up = node.ikeys.(mid) in
         let right =
           {
             ikeys = Array.sub node.ikeys (mid + 1) (Array.length node.ikeys - mid - 1);
             children =
               Array.sub node.children (mid + 1) (Array.length node.children - mid - 1);
           }
         in
         node.ikeys <- Array.sub node.ikeys 0 mid;
         node.children <- Array.sub node.children 0 (mid + 1);
         Split (sep_up, Internal right)
       end)

let insert t k v =
  match t.root with
  | None ->
    t.root <- Some (Leaf { keys = [| k |]; values = [| v |]; next = None });
    t.cardinal <- 1
  | Some root -> (
      match insert_node t root k v with
      | No_split -> ()
      | Split (sep, right) ->
        t.root <- Some (Internal { ikeys = [| sep |]; children = [| root; right |] }))

(* bulk loading: pack sorted bindings into leaves of ~3/4 branching (so
   later inserts don't split immediately), then build parent levels *)
let of_sorted ?(branching = 32) bindings =
  if branching < 4 || branching mod 2 <> 0 then
    invalid_arg "Btree.of_sorted: branching must be even and >= 4";
  let rec check_sorted = function
    | (k1, _) :: ((k2, _) :: _ as rest) ->
      if Tuple.compare k1 k2 >= 0 then
        invalid_arg "Btree.of_sorted: bindings not strictly ascending";
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted bindings;
  let t = { branching; root = None; cardinal = List.length bindings } in
  if bindings = [] then t
  else begin
    let fill = max (branching / 2) (branching * 3 / 4) in
    (* build leaves *)
    let rec leaves acc current n = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | b :: rest ->
        if n = fill then leaves (List.rev current :: acc) [ b ] 1 rest
        else leaves acc (b :: current) (n + 1) rest
    in
    let groups = leaves [] [] 0 bindings in
    (* fix an undersized final group: merge with its predecessor when the
       union fits one node, otherwise split the union evenly (both halves
       then satisfy the minimum fill) *)
    let fix_tail ~min_size ~max_size groups =
      match List.rev groups with
      | last :: prev :: rest_rev when List.length last < min_size ->
        let union = prev @ last in
        let n = List.length union in
        if n <= max_size then List.rev (union :: rest_rev)
        else begin
          let arr = Array.of_list union in
          let half = n / 2 in
          let g1 = Array.to_list (Array.sub arr 0 half) in
          let g2 = Array.to_list (Array.sub arr half (n - half)) in
          List.rev (g2 :: g1 :: rest_rev)
        end
      | _ -> groups
    in
    let groups = fix_tail ~min_size:(branching / 2) ~max_size:branching groups in
    let leaf_nodes =
      List.map
        (fun group ->
          {
            keys = Array.of_list (List.map fst group);
            values = Array.of_list (List.map snd group);
            next = None;
          })
        groups
    in
    (* chain the leaves *)
    let rec chain = function
      | a :: (b :: _ as rest) ->
        a.next <- Some b;
        chain rest
      | [ _ ] | [] -> ()
    in
    chain leaf_nodes;
    (* build internal levels bottom-up; separator = min key of right child *)
    let min_key = function
      | Leaf leaf -> leaf.keys.(0)
      | Internal node -> (
          let rec go n = match n with Leaf l -> l.keys.(0) | Internal i -> go i.children.(0) in
          go (Internal node))
    in
    let rec build level =
      match level with
      | [ single ] -> single
      | nodes ->
        let per_node = max 2 (branching * 3 / 4) in
        let rec group acc current n = function
          | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
          | node :: rest ->
            if n = per_node then group (List.rev current :: acc) [ node ] 1 rest
            else group acc (node :: current) (n + 1) rest
        in
        let groups = group [] [] 0 nodes in
        (* an internal node with c children has c-1 keys: minimum fill is
           branching/2 keys, i.e. branching/2 + 1 children; the union of
           two groups fits one node up to branching + 1 children *)
        let fix_tail ~min_size ~max_size groups =
          match List.rev groups with
          | last :: prev :: rest_rev when List.length last < min_size ->
            let union = prev @ last in
            let n = List.length union in
            if n <= max_size then List.rev (union :: rest_rev)
            else begin
              let arr = Array.of_list union in
              let half = n / 2 in
              let g1 = Array.to_list (Array.sub arr 0 half) in
              let g2 = Array.to_list (Array.sub arr half (n - half)) in
              List.rev (g2 :: g1 :: rest_rev)
            end
          | _ -> groups
        in
        let groups =
          fix_tail ~min_size:((branching / 2) + 1) ~max_size:(branching + 1) groups
        in
        let parents =
          List.map
            (fun children ->
              let children = Array.of_list children in
              let ikeys = Array.init (Array.length children - 1) (fun i -> min_key children.(i + 1)) in
              Internal { ikeys; children })
            groups
        in
        build parents
    in
    t.root <- Some (build (List.map (fun l -> Leaf l) leaf_nodes));
    t
  end

let min_keys t = t.branching / 2

let node_size = function
  | Leaf leaf -> Array.length leaf.keys
  | Internal node -> Array.length node.ikeys

(* Rebalance child [ci] of internal node [parent] if it underflowed.
   Preference: borrow from a sibling that can spare, else merge. *)
let rebalance_child t parent ci =
  let child = parent.children.(ci) in
  if node_size child >= min_keys t then ()
  else begin
    let left_sib = if ci > 0 then Some (ci - 1) else None in
    let right_sib = if ci < Array.length parent.children - 1 then Some (ci + 1) else None in
    let borrow_from_left li =
      let left = parent.children.(li) in
      match left, child with
      | Leaf l, Leaf c ->
        let n = Array.length l.keys in
        c.keys <- array_insert c.keys 0 l.keys.(n - 1);
        c.values <- array_insert c.values 0 l.values.(n - 1);
        l.keys <- Array.sub l.keys 0 (n - 1);
        l.values <- Array.sub l.values 0 (n - 1);
        parent.ikeys.(li) <- c.keys.(0)
      | Internal l, Internal c ->
        let n = Array.length l.ikeys in
        (* rotate through the parent separator *)
        c.ikeys <- array_insert c.ikeys 0 parent.ikeys.(li);
        c.children <- array_insert c.children 0 l.children.(n);
        parent.ikeys.(li) <- l.ikeys.(n - 1);
        l.ikeys <- Array.sub l.ikeys 0 (n - 1);
        l.children <- Array.sub l.children 0 n
      | (Leaf _ | Internal _), _ -> assert false
    in
    let borrow_from_right ri =
      let right = parent.children.(ri) in
      match child, right with
      | Leaf c, Leaf r ->
        c.keys <- Array.append c.keys [| r.keys.(0) |];
        c.values <- Array.append c.values [| r.values.(0) |];
        r.keys <- array_remove r.keys 0;
        r.values <- array_remove r.values 0;
        parent.ikeys.(ci) <- r.keys.(0)
      | Internal c, Internal r ->
        c.ikeys <- Array.append c.ikeys [| parent.ikeys.(ci) |];
        c.children <- Array.append c.children [| r.children.(0) |];
        parent.ikeys.(ci) <- r.ikeys.(0);
        r.ikeys <- array_remove r.ikeys 0;
        r.children <- array_remove r.children 0
      | (Leaf _ | Internal _), _ -> assert false
    in
    let merge li =
      (* merge children li and li+1 into li *)
      let left = parent.children.(li) and right = parent.children.(li + 1) in
      (match left, right with
       | Leaf l, Leaf r ->
         l.keys <- Array.append l.keys r.keys;
         l.values <- Array.append l.values r.values;
         l.next <- r.next
       | Internal l, Internal r ->
         l.ikeys <- Array.concat [ l.ikeys; [| parent.ikeys.(li) |]; r.ikeys ];
         l.children <- Array.append l.children r.children
       | (Leaf _ | Internal _), _ -> assert false);
      parent.ikeys <- array_remove parent.ikeys li;
      parent.children <- array_remove parent.children (li + 1)
    in
    let can_spare i = node_size parent.children.(i) > min_keys t in
    match left_sib, right_sib with
    | Some li, _ when can_spare li -> borrow_from_left li
    | _, Some ri when can_spare ri -> borrow_from_right ri
    | Some li, _ -> merge li
    | None, Some _ -> merge ci
    | None, None -> ()  (* root child: handled by caller *)
  end

let rec remove_node t node k =
  match node with
  | Leaf leaf ->
    let i = lower_bound leaf.keys k in
    if i < Array.length leaf.keys && Tuple.compare leaf.keys.(i) k = 0 then begin
      leaf.keys <- array_remove leaf.keys i;
      leaf.values <- array_remove leaf.values i;
      t.cardinal <- t.cardinal - 1;
      true
    end
    else false
  | Internal node ->
    let ci = child_index node.ikeys k in
    let removed = remove_node t node.children.(ci) k in
    if removed then rebalance_child t node ci;
    removed

let remove t k =
  match t.root with
  | None -> false
  | Some root ->
    let removed = remove_node t root k in
    (* collapse the root when it degenerates *)
    (match t.root with
     | Some (Internal node) when Array.length node.ikeys = 0 -> t.root <- Some node.children.(0)
     | Some (Leaf leaf) when Array.length leaf.keys = 0 -> t.root <- None
     | Some (Internal _ | Leaf _) | None -> ());
    removed

type bound = Unbounded | Incl of Tuple.t | Excl of Tuple.t

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal node -> leftmost_leaf node.children.(0)

let iter_range t ~lo ~hi f =
  match t.root with
  | None -> ()
  | Some root ->
    let start_leaf =
      match lo with
      | Unbounded -> leftmost_leaf root
      | Incl k | Excl k -> find_leaf root k
    in
    let ge_lo k =
      match lo with
      | Unbounded -> true
      | Incl b -> Tuple.compare k b >= 0
      | Excl b -> Tuple.compare k b > 0
    in
    let le_hi k =
      match hi with
      | Unbounded -> true
      | Incl b -> Tuple.compare k b <= 0
      | Excl b -> Tuple.compare k b < 0
    in
    let rec walk leaf =
      let n = Array.length leaf.keys in
      let stop = ref false in
      for i = 0 to n - 1 do
        if not !stop then begin
          let k = leaf.keys.(i) in
          if not (le_hi k) then stop := true
          else if ge_lo k then f k leaf.values.(i)
        end
      done;
      if not !stop then match leaf.next with Some next -> walk next | None -> ()
    in
    walk start_leaf

let iter t f = iter_range t ~lo:Unbounded ~hi:Unbounded f

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let min_binding t =
  match t.root with
  | None -> None
  | Some root ->
    let leaf = leftmost_leaf root in
    if Array.length leaf.keys = 0 then None else Some (leaf.keys.(0), leaf.values.(0))

let rec rightmost = function
  | Leaf leaf ->
    let n = Array.length leaf.keys in
    if n = 0 then None else Some (leaf.keys.(n - 1), leaf.values.(n - 1))
  | Internal node -> rightmost node.children.(Array.length node.children - 1)

let max_binding t = match t.root with None -> None | Some root -> rightmost root

let depth t =
  let rec go = function Leaf _ -> 1 | Internal node -> 1 + go node.children.(0) in
  match t.root with None -> 0 | Some root -> go root

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (match t.root with
     | None -> if t.cardinal <> 0 then fail "empty tree with cardinal %d" t.cardinal
     | Some root ->
       let leaves = ref [] in
       (* returns (depth, min_key, max_key, count) *)
       let rec go node ~is_root =
         match node with
         | Leaf leaf ->
           let n = Array.length leaf.keys in
           if n = 0 && not is_root then fail "empty non-root leaf";
           if (not is_root) && n < min_keys t then fail "leaf underflow: %d keys" n;
           if n > t.branching then fail "leaf overflow: %d keys" n;
           for i = 0 to n - 2 do
             if Tuple.compare leaf.keys.(i) leaf.keys.(i + 1) >= 0 then fail "leaf key order"
           done;
           leaves := leaf :: !leaves;
           if n = 0 then (1, None, None, 0)
           else (1, Some leaf.keys.(0), Some leaf.keys.(n - 1), n)
         | Internal node ->
           let nk = Array.length node.ikeys in
           if nk = 0 then fail "internal node with no keys";
           if (not is_root) && nk < min_keys t then fail "internal underflow";
           if nk > t.branching then fail "internal overflow";
           if Array.length node.children <> nk + 1 then fail "children/keys arity mismatch";
           for i = 0 to nk - 2 do
             if Tuple.compare node.ikeys.(i) node.ikeys.(i + 1) >= 0 then fail "separator order"
           done;
           let depths = ref [] in
           let total = ref 0 in
           let mins = Array.make (nk + 1) None and maxs = Array.make (nk + 1) None in
           Array.iteri
             (fun i child ->
               let d, mn, mx, c = go child ~is_root:false in
               depths := d :: !depths;
               total := !total + c;
               mins.(i) <- mn;
               maxs.(i) <- mx)
             node.children;
           (match !depths with
            | d :: rest -> if not (List.for_all (fun x -> x = d) rest) then fail "uneven depth"
            | [] -> fail "no children");
           (* each separator = lower bound of right subtree, > max of left *)
           for i = 0 to nk - 1 do
             (match maxs.(i) with
              | Some mx when Tuple.compare mx node.ikeys.(i) >= 0 ->
                fail "separator not greater than left subtree max"
              | Some _ | None -> ());
             match mins.(i + 1) with
             | Some mn when Tuple.compare mn node.ikeys.(i) < 0 ->
               fail "right subtree min below separator"
             | Some _ | None -> ()
           done;
           let d = match !depths with d :: _ -> d | [] -> 0 in
           (d + 1, mins.(0), maxs.(nk), !total)
       in
       let _, _, _, total = go root ~is_root:true in
       if total <> t.cardinal then fail "cardinal %d but %d keys reachable" t.cardinal total;
       (* leaf chain must visit exactly the leaves, left to right *)
       let chain = ref [] in
       let rec follow leaf =
         chain := leaf :: !chain;
         match leaf.next with Some next -> follow next | None -> ()
       in
       follow (leftmost_leaf root);
       if List.length !chain <> List.length !leaves then fail "leaf chain length mismatch");
    Ok ()
  with Bad msg -> Error msg
