lib/storage/page.mli:
