(** Aggregate (group-by) views.

    The paper positions delta extraction as the missing first step in
    front of work like Labio, Yerneni & Garcia-Molina's "Shrinking the
    Warehouse Update Window" [19], which maintains {e aggregate} views.
    This module supplies that view class so the warehouse can exercise the
    full pipeline: [SELECT g1..gk, AGG(c).. FROM t WHERE p GROUP BY g1..gk].

    Incremental maintainability (the classic results, all implemented):
    - [Count] and [Sum] are self-maintainable under inserts and deletes;
    - [Min]/[Max] are self-maintainable under inserts, but a delete of the
      current extremum forces a group re-scan of the (warehouse-resident)
      replica — which is exactly why warehouses keep detail data. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr

type agg_fn =
  | Count
  | Sum of string
  | Min of string
  | Max of string

type t = {
  name : string;
  table : string;
  schema : Schema.t;        (** source schema *)
  filter : Expr.t option;
  group_by : string list;   (** non-empty; become the output key *)
  aggregates : (string * agg_fn) list;  (** (output column, function) *)
}

val validate : t -> (unit, string) result
(** Group/aggregate columns exist; Sum/Min/Max columns are numeric
    (Sum) or orderable non-null (Min/Max); output names don't collide. *)

val output_schema : t -> Schema.t
(** Group columns (key) followed by the aggregate columns. *)

val group_key : t -> Tuple.t -> Tuple.t
(** The group a (filter-passing) source row belongs to. *)

val passes : t -> Tuple.t -> bool

val eval : t -> rows:Tuple.t list -> (Tuple.t * int) list
(** Full recomputation: one output row per non-empty group, with the
    group's cardinality (used by maintenance to know when a group dies),
    sorted by group key. *)

val agg_value : t -> agg_fn -> Tuple.t list -> Value.t
(** Aggregate one group's rows (used for extremum re-derivation). *)

(** {2 Incremental state transitions} — pure helpers the warehouse calls.
    State per group: the output row (group cols + agg cols) and the group
    cardinality. *)

val init_group : t -> Tuple.t -> Tuple.t
(** Output row for a brand-new group containing just this source row. *)

val apply_insert : t -> current:Tuple.t -> Tuple.t -> Tuple.t
(** Fold one more source row into a group's output row. *)

type delete_outcome =
  | Updated of Tuple.t          (** new output row *)
  | Needs_rescan                (** a Min/Max extremum left: recompute *)

val apply_delete : t -> current:Tuple.t -> Tuple.t -> delete_outcome
(** Remove one source row's contribution.  The caller handles group death
    (cardinality 0) before calling this. *)

val recompute_group :
  t -> group:Tuple.t -> replica_rows:Tuple.t list -> (Tuple.t * int) option
(** Re-derive a group's output row and cardinality from replica detail
    rows ([None] if the group is empty). *)
