(** Logical simulated clock.

    Used by the warehouse availability experiment (W2): outage is accounted
    in logical ticks — intervals during which OLAP queries are blocked —
    rather than wall-clock time, so the result is deterministic. *)

type t

val create : unit -> t
(** A clock starting at time 0. *)

val now : t -> int
(** Current logical time. *)

val advance : t -> int -> unit
(** [advance t d] moves the clock forward by [d] ticks; [d >= 0]. *)

(** An interval recorder: accumulates total closed time, e.g. warehouse
    outage windows. *)
module Span_recorder : sig
  type clock := t
  type t

  val create : clock -> t
  val open_span : t -> unit
  (** Start a span at the current time; no-op if one is already open. *)

  val close_span : t -> unit
  (** Close the open span, accumulating its duration; no-op if none open. *)

  val total : t -> int
  (** Total accumulated closed time (an open span counts up to [now]). *)

  val count : t -> int
  (** Number of closed spans. *)
end
