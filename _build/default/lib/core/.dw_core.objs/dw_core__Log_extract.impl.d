lib/core/log_extract.ml: Delta Dw_engine Dw_relation Dw_storage Dw_txn Hashtbl List Printf
