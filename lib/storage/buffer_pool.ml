module Metrics = Dw_util.Metrics

(* Frames live in fixed arrays; replacement order is an intrusive doubly
   linked LRU list over frame indices (head = most recent, tail = victim),
   so a miss picks its victim in O(1) instead of scanning every frame.
   Invariant: a frame is on the LRU list iff [valid], on the free list
   otherwise.

   Striping: the pool is split into [stripes] independently-mutexed
   sub-pools, each owning its share of the frame budget; a page maps to
   a stripe by (file, page) hash, so parallel scan domains faulting
   different pages contend only when they hash together.  One stripe
   (the default) is byte-for-byte the old single-LRU behaviour, which
   the eviction-order regression tests rely on.  [with_page] holds the
   stripe mutex for the whole callback: the frame bytes are owned by the
   caller until it returns, which is also what keeps page reads and
   write-backs of the same page from interleaving. *)

type frame = {
  mutable key : string * int;  (* file name, page number *)
  data : bytes;
  mutable dirty : bool;
  mutable valid : bool;
  mutable file : Vfs.file option;
  mutable prev : int;  (* towards MRU; -1 = none *)
  mutable next : int;  (* towards LRU; -1 = none *)
}

type stripe = {
  frames : frame array;
  table : (string * int, int) Hashtbl.t;  (* key -> frame index *)
  mutable mru : int;   (* -1 when the list is empty *)
  mutable lru : int;
  mutable free : int list;  (* invalid frames *)
  stripe_lock : Mutex.t;
}

type t = {
  vfs : Vfs.t;
  stripes : stripe array;
  (* file growth must be serialised across stripes: page numbers are
     allocated from the current file size *)
  append_lock : Mutex.t;
}

let mk_stripe capacity =
  {
    frames =
      Array.init capacity (fun _ ->
          { key = ("", -1); data = Bytes.create Page.size; dirty = false; valid = false;
            file = None; prev = -1; next = -1 });
    table = Hashtbl.create (capacity * 2);
    mru = -1;
    lru = -1;
    free = List.init capacity Fun.id;
    stripe_lock = Mutex.create ();
  }

let create ?(stripes = 1) ~vfs ~capacity () =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  if stripes < 1 then invalid_arg "Buffer_pool.create: stripes < 1";
  let n = min stripes capacity (* every stripe gets at least one frame *) in
  let base = capacity / n and rem = capacity mod n in
  {
    vfs;
    stripes = Array.init n (fun i -> mk_stripe (base + if i < rem then 1 else 0));
    append_lock = Mutex.create ();
  }

let vfs t = t.vfs

let stripe_count t = Array.length t.stripes

let capacity t = Array.fold_left (fun acc sp -> acc + Array.length sp.frames) 0 t.stripes

let page_count _t file = Vfs.size file / Page.size

let metrics t = Vfs.metrics t.vfs

let stripe_for t key = t.stripes.(Hashtbl.hash key mod Array.length t.stripes)

let locked m f = Mutex.protect m f

(* ---- LRU list primitives (callers hold sp.stripe_lock) ---- *)

let unlink sp i =
  let f = sp.frames.(i) in
  (match f.prev with -1 -> sp.mru <- f.next | p -> sp.frames.(p).next <- f.next);
  (match f.next with -1 -> sp.lru <- f.prev | n -> sp.frames.(n).prev <- f.prev);
  f.prev <- -1;
  f.next <- -1

let push_mru sp i =
  let f = sp.frames.(i) in
  f.prev <- -1;
  f.next <- sp.mru;
  (match sp.mru with -1 -> () | m -> sp.frames.(m).prev <- i);
  sp.mru <- i;
  if sp.lru = -1 then sp.lru <- i

let touch sp i =
  if sp.mru <> i then begin
    unlink sp i;
    push_mru sp i
  end

let write_back t frame =
  match frame.file with
  | Some file when frame.dirty ->
    let _, pno = frame.key in
    Vfs.write_at file ~off:(pno * Page.size) frame.data;
    frame.dirty <- false;
    Metrics.incr (metrics t) "pool.writebacks"
  | Some _ | None -> ()

(* an invalid frame if one exists, otherwise the least recently used *)
let victim sp =
  match sp.free with
  | i :: rest ->
    sp.free <- rest;
    i
  | [] -> sp.lru

let load t sp file pno =
  let key = (Vfs.name file, pno) in
  match Hashtbl.find_opt sp.table key with
  | Some idx ->
    Metrics.incr (metrics t) "pool.hits";
    touch sp idx;
    sp.frames.(idx)
  | None ->
    Metrics.incr (metrics t) "pool.misses";
    Metrics.time (metrics t) "pool.miss" (fun () ->
        let idx = victim sp in
        let frame = sp.frames.(idx) in
        if frame.valid then begin
          write_back t frame;
          Hashtbl.remove sp.table frame.key;
          Metrics.incr (metrics t) "pool.evictions";
          unlink sp idx
        end;
        let data = Vfs.read_at file ~off:(pno * Page.size) ~len:Page.size in
        Bytes.blit data 0 frame.data 0 Page.size;
        frame.key <- key;
        frame.valid <- true;
        frame.dirty <- false;
        frame.file <- Some file;
        Hashtbl.replace sp.table key idx;
        push_mru sp idx;
        frame)

let with_page t file pno ~dirty f =
  if pno < 0 || pno >= page_count t file then
    invalid_arg
      (Printf.sprintf "Buffer_pool.with_page: page %d outside file %s (%d pages)" pno
         (Vfs.name file) (page_count t file));
  let sp = stripe_for t (Vfs.name file, pno) in
  locked sp.stripe_lock (fun () ->
      let frame = load t sp file pno in
      if dirty then frame.dirty <- true;
      f frame.data)

let append_page t file init =
  locked t.append_lock (fun () ->
      let pno = page_count t file in
      (* materialise the page on disk so page_count stays consistent *)
      Vfs.write_at file ~off:(pno * Page.size) (Bytes.make Page.size '\000');
      let sp = stripe_for t (Vfs.name file, pno) in
      locked sp.stripe_lock (fun () ->
          let frame = load t sp file pno in
          frame.dirty <- true;
          init frame.data);
      pno)

let flush_file t file =
  let fname = Vfs.name file in
  Array.iter
    (fun sp ->
      locked sp.stripe_lock (fun () ->
          Array.iter
            (fun frame ->
              if frame.valid && fst frame.key = fname then write_back t frame)
            sp.frames))
    t.stripes

let flush_all t =
  Array.iter
    (fun sp ->
      locked sp.stripe_lock (fun () ->
          Array.iter (fun frame -> if frame.valid then write_back t frame) sp.frames))
    t.stripes

let invalidate_file t file =
  let fname = Vfs.name file in
  Array.iter
    (fun sp ->
      locked sp.stripe_lock (fun () ->
          Array.iteri
            (fun i frame ->
              if frame.valid && fst frame.key = fname then begin
                Hashtbl.remove sp.table frame.key;
                frame.valid <- false;
                frame.dirty <- false;
                frame.file <- None;
                unlink sp i;
                sp.free <- i :: sp.free
              end)
            sp.frames))
    t.stripes
