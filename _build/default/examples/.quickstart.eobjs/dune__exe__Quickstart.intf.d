examples/quickstart.mli:
