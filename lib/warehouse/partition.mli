(** Partition specifications for the warehouse fact table.

    A spec names the partitioned table, its (integer) partition-key
    column, and the placement method — [Hash n] spreads keys over [n]
    partitions by a fixed multiplicative hash, [Range bounds] splits the
    key space at the given ascending upper-exclusive bounds (so
    [Range [100; 200]] makes three partitions: keys below 100, keys in
    [100, 200), and the rest).  Both methods are total over the integer
    key space: every key routes to exactly one partition, always the
    same one for the same spec.

    Specs are persisted in warehouse metadata (a [__partition_spec]
    table in every shard, written at creation time) so a crashed
    partitioned warehouse can be re-adopted with the placement it was
    built with — see {!Partitioned.reopen} — and a shard can detect
    being attached under the wrong spec. *)

module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db

(** Placement method over the integer partition key. *)
type method_ =
  | Hash of int  (** [Hash n]: key [k] goes to [mix k mod n]; [n >= 1] *)
  | Range of int list
      (** [Range bounds]: strictly ascending upper-exclusive split
          points; [List.length bounds + 1] partitions *)

type t
(** A validated partition spec (constructed by {!make}). *)

val make : table:string -> key_column:string -> method_ -> t
(** Validate and build a spec.  Raises [Invalid_argument] on an empty or
    delimiter-bearing table/column name (names may not contain [':'],
    [','] or whitespace), [Hash n] with [n < 1], or [Range] bounds that
    are not strictly ascending. *)

val table : t -> string
(** The partitioned (fact) table's name. *)

val key_column : t -> string
(** The integer column keys are routed by (the table's leading key
    column in every current use). *)

val method_ : t -> method_
(** The placement method the spec was built with. *)

val partitions : t -> int
(** Number of partitions ([n] for [Hash n], [bounds + 1] for [Range]). *)

val route_key : t -> int -> int
(** The partition (in [0, partitions - 1]) owning integer key [k].
    Total and deterministic: same spec, same key, same partition. *)

val route_value : t -> Value.t -> int
(** {!route_key} on an [Int] or [Date] value.  Raises
    [Invalid_argument] on any other type — partition keys are integers
    and non-nullable. *)

val route_row : t -> Schema.t -> Tuple.t -> int
(** Route a whole row of the fact table by its partition-key column.
    Raises [Not_found] if [schema] lacks the key column. *)

val to_string : t -> string
(** One-line serialization, e.g. ["hash:parts:part_id:4"] or
    ["range:parts:part_id:100,200"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first malformation.
    [of_string (to_string s)] re-validates, so only specs {!make} would
    accept parse back. *)

val equal : t -> t -> bool
(** Structural equality (same table, key column and method). *)

val spec_table : string
(** Name of the metadata table specs persist into
    ([__partition_spec]). *)

val spec_schema : Schema.t
(** Schema of {!spec_table}: [(id INT KEY, shard INT, spec STRING)] —
    include it in a {!Db.reopen} catalog when re-adopting a shard. *)

val save : Db.t -> shard:int -> t -> unit
(** Persist the spec and this shard's index into [db]'s
    [__partition_spec] table (created on first save, overwritten on
    subsequent ones), inside its own transaction. *)

val load : Db.t -> (int * t) option
(** Read back [(shard index, spec)] persisted by {!save}; [None] if the
    metadata table is absent or empty.  Raises [Invalid_argument] on a
    corrupt spec row. *)
