lib/storage/buffer_pool.ml: Array Bytes Dw_util Hashtbl Page Printf Vfs
