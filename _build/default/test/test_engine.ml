(* Tests for Dw_engine: DML, transactions, triggers, timestamp columns,
   SQL execution, Export/Import/Loader utilities, checkpoint + recovery. *)

module Vfs = Dw_storage.Vfs
module Heap_file = Dw_storage.Heap_file
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Expr = Dw_relation.Expr
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Trigger = Dw_engine.Trigger
module Export_util = Dw_engine.Export_util
module Import_util = Dw_engine.Import_util
module Ascii_util = Dw_engine.Ascii_util

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let parts_schema =
  Schema.make
    [
      { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "descr"; ty = Value.Tstring 40; nullable = true };
      { Schema.name = "qty"; ty = Value.Tint; nullable = true };
      { Schema.name = "last_modified"; ty = Value.Tdate; nullable = false };
    ]

let part id descr qty = [| Value.Int id; Value.Str descr; Value.Int qty; Value.Date 0 |]

let mk_db ?(archive = false) () =
  let vfs = Vfs.in_memory () in
  Db.create ~archive_log:archive ~vfs ~name:"src" ()

let mk_parts ?archive () =
  let db = mk_db ?archive () in
  let _ = Db.create_table db ~name:"parts" ~ts_column:"last_modified" parts_schema in
  db

let seed_parts db n =
  Db.with_txn db (fun txn ->
      for i = 1 to n do
        ignore (Db.insert db txn "parts" (part i (Printf.sprintf "part-%d" i) (i mod 50))
                : Heap_file.rid)
      done)

let eq_int = Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int 5))

(* ---------- basic DML ---------- *)

let dml_insert_select () =
  let db = mk_parts () in
  seed_parts db 20;
  let rows = Db.with_txn db (fun txn -> Db.select db txn "parts" ~where:eq_int ()) in
  check Alcotest.int "one row" 1 (List.length rows);
  let all = Db.with_txn db (fun txn -> Db.select db txn "parts" ()) in
  check Alcotest.int "all rows" 20 (List.length all)

let dml_update () =
  let db = mk_parts () in
  seed_parts db 10;
  let n =
    Db.with_txn db (fun txn ->
        Db.update_where db txn "parts"
          ~set:[ ("qty", Expr.Binop (Expr.Add, Expr.Col "qty", Expr.Lit (Value.Int 100))) ]
          ~where:(Some (Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 3)))))
  in
  check Alcotest.int "3 updated" 3 n;
  let rows =
    Db.with_txn db (fun txn ->
        Db.select db txn "parts"
          ~where:(Expr.Cmp (Expr.Ge, Expr.Col "qty", Expr.Lit (Value.Int 100)))
          ())
  in
  check Alcotest.int "3 big" 3 (List.length rows)

let dml_delete () =
  let db = mk_parts () in
  seed_parts db 10;
  let n =
    Db.with_txn db (fun txn ->
        Db.delete_where db txn "parts"
          ~where:(Some (Expr.Cmp (Expr.Gt, Expr.Col "part_id", Expr.Lit (Value.Int 7)))))
  in
  check Alcotest.int "3 deleted" 3 n;
  check Alcotest.int "7 left" 7 (Table.row_count (Db.table db "parts"))

let dml_duplicate_key () =
  let db = mk_parts () in
  seed_parts db 3;
  (try
     Db.with_txn db (fun txn ->
         ignore (Db.insert db txn "parts" (part 2 "dup" 0) : Heap_file.rid));
     Alcotest.fail "expected duplicate key failure"
   with Invalid_argument _ -> ());
  (* the failed txn was aborted; table unchanged *)
  check Alcotest.int "count stable" 3 (Table.row_count (Db.table db "parts"))

(* ---------- transactions ---------- *)

let txn_abort_rolls_back () =
  let db = mk_parts () in
  seed_parts db 5;
  let txn = Db.begin_txn db in
  ignore (Db.insert db txn "parts" (part 100 "x" 1) : Heap_file.rid);
  ignore
    (Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int 0)) ] ~where:None : int);
  ignore (Db.delete_where db txn "parts" ~where:(Some eq_int) : int);
  Db.abort db txn;
  let rows = Db.with_txn db (fun t -> Db.select db t "parts" ()) in
  check Alcotest.int "count restored" 5 (List.length rows);
  List.iter
    (fun r ->
      match Tuple.get parts_schema r "qty" with
      | Value.Int q -> check Alcotest.bool "qty restored" true (q <> 0 || q = 0 && false = false)
      | _ -> Alcotest.fail "qty type")
    rows;
  (* key 5 still present *)
  let five = Db.with_txn db (fun t -> Db.select db t "parts" ~where:eq_int ()) in
  check Alcotest.int "row 5 back" 1 (List.length five)

let txn_abort_restores_values () =
  let db = mk_parts () in
  seed_parts db 3;
  let before = Db.with_txn db (fun t -> Db.select db t "parts" ()) in
  let txn = Db.begin_txn db in
  ignore
    (Db.update_where db txn "parts" ~set:[ ("descr", Expr.Lit (Value.Str "mangled")) ]
       ~where:None : int);
  Db.abort db txn;
  let after = Db.with_txn db (fun t -> Db.select db t "parts" ()) in
  List.iter2
    (fun a b -> check Alcotest.bool "tuple restored" true (Tuple.equal a b))
    (List.sort Tuple.compare before) (List.sort Tuple.compare after)

let txn_finished_rejected () =
  let db = mk_parts () in
  let txn = Db.begin_txn db in
  Db.commit db txn;
  (try
     ignore (Db.insert db txn "parts" (part 1 "x" 1) : Heap_file.rid);
     Alcotest.fail "expected failure on finished txn"
   with Invalid_argument _ -> ())

(* ---------- timestamp maintenance ---------- *)

let ts_maintained () =
  let db = mk_parts () in
  Db.set_day db 100;
  seed_parts db 5;
  Db.set_day db 200;
  ignore
    (Db.with_txn db (fun txn ->
         Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int 1)) ]
           ~where:(Some eq_int)));
  let tbl = Db.table db "parts" in
  let fresh = ref 0 in
  Table.ts_range tbl ~after:150 (fun _ _ -> incr fresh);
  check Alcotest.int "one freshly-stamped row" 1 !fresh;
  let all = ref 0 in
  Table.ts_range tbl ~after:50 (fun _ _ -> incr all);
  check Alcotest.int "all rows stamped" 5 !all

(* ---------- triggers ---------- *)

let delta_schema =
  Schema.make ~key_arity:2
    [
      { Schema.name = "seq"; ty = Value.Tint; nullable = false };
      { Schema.name = "img"; ty = Value.Tstring 10; nullable = false };
      { Schema.name = "part_id"; ty = Value.Tint; nullable = true };
    ]

let install_capture_trigger db =
  let seq = ref 0 in
  let capture (ctx : Db.trigger_ctx) event =
    let record img id =
      incr seq;
      ignore
        (Db.insert ctx.Db.ctx_db ctx.Db.ctx_txn "delta"
           [| Value.Int !seq; Value.Str img; Value.Int id |]
          : Heap_file.rid)
    in
    let id_of tuple = match tuple.(0) with Value.Int i -> i | _ -> -1 in
    match event with
    | Trigger.Inserted (_, t) -> record "new" (id_of t)
    | Trigger.Deleted (_, t) -> record "old" (id_of t)
    | Trigger.Updated (_, before, after) ->
      record "old" (id_of before);
      record "new" (id_of after)
  in
  let _ = Db.create_table db ~name:"delta" delta_schema in
  Db.add_trigger db ~table:"parts"
    { Trigger.name = "capture"; on = [ Trigger.On_insert; Trigger.On_delete; Trigger.On_update ];
      action = capture }

let trigger_captures_images () =
  let db = mk_parts () in
  install_capture_trigger db;
  seed_parts db 4;
  ignore
    (Db.with_txn db (fun txn ->
         Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int 9)) ]
           ~where:(Some (Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 2))))));
  ignore (Db.with_txn db (fun txn -> Db.delete_where db txn "parts" ~where:(Some eq_int)));
  (* 4 inserts -> 4 rows; 2 updates -> 4 rows (before+after); delete of
     part 5 matches nothing (only 4 parts) -> 0 *)
  check Alcotest.int "delta rows" 8 (Table.row_count (Db.table db "delta"))

let trigger_same_txn_rollback () =
  let db = mk_parts () in
  install_capture_trigger db;
  let txn = Db.begin_txn db in
  ignore (Db.insert db txn "parts" (part 1 "a" 1) : Heap_file.rid);
  check Alcotest.int "delta written in txn" 1 (Table.row_count (Db.table db "delta"));
  Db.abort db txn;
  (* the triggered insert aborts with the user transaction *)
  check Alcotest.int "delta rolled back" 0 (Table.row_count (Db.table db "delta"));
  check Alcotest.int "parts rolled back" 0 (Table.row_count (Db.table db "parts"))

let trigger_selective_events () =
  let db = mk_parts () in
  let fired = ref 0 in
  Db.add_trigger db ~table:"parts"
    { Trigger.name = "only-delete"; on = [ Trigger.On_delete ];
      action = (fun _ _ -> incr fired) };
  seed_parts db 3;
  check Alcotest.int "inserts don't fire" 0 !fired;
  ignore (Db.with_txn db (fun txn -> Db.delete_where db txn "parts" ~where:None));
  check Alcotest.int "deletes fire per row" 3 !fired

let trigger_remove () =
  let db = mk_parts () in
  let fired = ref 0 in
  Db.add_trigger db ~table:"parts"
    { Trigger.name = "t1"; on = [ Trigger.On_insert ]; action = (fun _ _ -> incr fired) };
  check (Alcotest.list Alcotest.string) "registered" [ "t1" ] (Db.triggers_on db "parts");
  Db.remove_trigger db ~table:"parts" "t1";
  seed_parts db 2;
  check Alcotest.int "removed trigger silent" 0 !fired

(* ---------- SQL ---------- *)

let sql_end_to_end () =
  let db = mk_db () in
  Db.with_txn db (fun txn ->
      (match Db.exec_sql db txn "CREATE TABLE parts (part_id INT NOT NULL KEY, descr STRING(40), qty INT)" with
       | Ok Db.Created -> ()
       | Ok _ | Error _ -> Alcotest.fail "create failed");
      (match
         Db.exec_sql db txn "INSERT INTO parts VALUES (1, 'bolt', 5), (2, 'nut', 0), (3, 'cog', 7)"
       with
       | Ok (Db.Affected 3) -> ()
       | Ok _ -> Alcotest.fail "insert shape"
       | Error e -> Alcotest.fail e);
      (match Db.exec_sql db txn "UPDATE parts SET qty = qty + 1 WHERE qty = 0" with
       | Ok (Db.Affected 1) -> ()
       | Ok _ | Error _ -> Alcotest.fail "update failed");
      (match Db.exec_sql db txn "DELETE FROM parts WHERE part_id = 3" with
       | Ok (Db.Affected 1) -> ()
       | Ok _ | Error _ -> Alcotest.fail "delete failed");
      match Db.exec_sql db txn "SELECT descr, qty FROM parts WHERE qty >= 1 ORDER BY part_id" with
      | Ok (Db.Rows { columns; rows }) ->
        check (Alcotest.list Alcotest.string) "columns" [ "descr"; "qty" ] columns;
        check Alcotest.int "rows" 2 (List.length rows);
        (match rows with
         | [ r1; _ ] -> check Alcotest.bool "bolt first" true (r1.(0) = Value.Str "bolt")
         | _ -> Alcotest.fail "rows shape")
      | Ok _ -> Alcotest.fail "select shape"
      | Error e -> Alcotest.fail e)

let sql_aggregates () =
  let db = mk_db () in
  Db.with_txn db (fun txn ->
      (match
         Db.exec_sql db txn
           "CREATE TABLE items (id INT NOT NULL KEY, cat STRING(8), qty INT, price FLOAT)"
       with
       | Ok Db.Created -> ()
       | Ok _ | Error _ -> Alcotest.fail "create failed");
      (match
         Db.exec_sql db txn
           "INSERT INTO items VALUES (1, 'a', 10, 1.5), (2, 'a', 20, 2.5), (3, 'b', 5, 10.0), \
            (4, 'b', NULL, 4.0), (5, 'c', 7, 0.5)"
       with
       | Ok (Db.Affected 5) -> ()
       | Ok _ | Error _ -> Alcotest.fail "insert failed");
      (* grouped aggregates *)
      (match
         Db.exec_sql db txn
           "SELECT cat, COUNT(*) AS n, COUNT(qty) AS nn, SUM(qty) AS total, MIN(price), \
            MAX(price) FROM items GROUP BY cat ORDER BY cat"
       with
       | Ok (Db.Rows { columns; rows }) ->
         check (Alcotest.list Alcotest.string) "columns"
           [ "cat"; "n"; "nn"; "total"; "col4"; "col5" ] columns;
         (match rows with
          | [ ra; rb; rc ] ->
            check Alcotest.bool "a count" true (ra.(1) = Value.Int 2);
            check Alcotest.bool "a sum" true (ra.(3) = Value.Int 30);
            check Alcotest.bool "b count*" true (rb.(1) = Value.Int 2);
            check Alcotest.bool "b count qty skips null" true (rb.(2) = Value.Int 1);
            check Alcotest.bool "b min price" true (rb.(4) = Value.Float 4.0);
            check Alcotest.bool "c max price" true (rc.(5) = Value.Float 0.5)
          | _ -> Alcotest.fail "rows shape")
       | Ok _ -> Alcotest.fail "select shape"
       | Error e -> Alcotest.fail e);
      (* global aggregate over empty selection *)
      (match Db.exec_sql db txn "SELECT COUNT(*), SUM(qty) FROM items WHERE qty > 1000" with
       | Ok (Db.Rows { rows = [ r ]; _ }) ->
         check Alcotest.bool "count 0" true (r.(0) = Value.Int 0);
         check Alcotest.bool "sum 0" true (r.(1) = Value.Int 0)
       | Ok _ -> Alcotest.fail "global agg shape"
       | Error e -> Alcotest.fail e);
      (* avg promotes to float *)
      (match Db.exec_sql db txn "SELECT AVG(qty) FROM items WHERE cat = 'a'" with
       | Ok (Db.Rows { rows = [ r ]; _ }) ->
         check Alcotest.bool "avg 15.0" true (Value.equal r.(0) (Value.Float 15.0))
       | Ok _ -> Alcotest.fail "avg shape"
       | Error e -> Alcotest.fail e);
      (* non-grouping bare column rejected *)
      check Alcotest.bool "bare column with GROUP BY rejected" true
        (Result.is_error (Db.exec_sql db txn "SELECT price FROM items GROUP BY cat"));
      check Alcotest.bool "star with aggregates rejected" true
        (Result.is_error (Db.exec_sql db txn "SELECT * FROM items GROUP BY cat")))

let sql_errors () =
  let db = mk_parts () in
  Db.with_txn db (fun txn ->
      check Alcotest.bool "parse error" true (Result.is_error (Db.exec_sql db txn "SELEC x"));
      check Alcotest.bool "unknown table" true
        (Result.is_error (Db.exec_sql db txn "SELECT * FROM nope"));
      check Alcotest.bool "unknown column" true
        (Result.is_error (Db.exec_sql db txn "SELECT * FROM parts WHERE nope = 1")))

(* ---------- utilities ---------- *)

let export_import_roundtrip () =
  let db = mk_parts () in
  seed_parts db 200;
  let stats = Export_util.export_table db ~table:"parts" ~dest:"parts.exp" () in
  check Alcotest.int "exported rows" 200 stats.Export_util.rows;
  (* import into a second table with the same schema *)
  let _ = Db.create_table db ~name:"parts2" ~ts_column:"last_modified" parts_schema in
  (match Import_util.import_table db ~src:"parts.exp" ~table:"parts2" with
   | Ok s ->
     check Alcotest.int "imported rows" 200 s.Import_util.rows;
     check Alcotest.bool "staging I/O happened" true (s.Import_util.staged_bytes > 0)
   | Error e -> Alcotest.fail e);
  let a = ref [] and b = ref [] in
  Table.scan (Db.table db "parts") (fun _ t -> a := t :: !a);
  Table.scan (Db.table db "parts2") (fun _ t -> b := t :: !b);
  let sort l = List.sort Tuple.compare l in
  List.iter2
    (fun x y -> check Alcotest.bool "same tuples" true (Tuple.equal x y))
    (sort !a) (sort !b)

let import_rejects_wrong_schema () =
  let db = mk_parts () in
  seed_parts db 5;
  ignore (Export_util.export_table db ~table:"parts" ~dest:"p.exp" () : Export_util.stats);
  let other =
    Schema.make
      [
        { Schema.name = "x"; ty = Value.Tint; nullable = false };
        { Schema.name = "y"; ty = Value.Tint; nullable = true };
      ]
  in
  let _ = Db.create_table db ~name:"other" other in
  check Alcotest.bool "schema mismatch" true
    (Result.is_error (Import_util.import_table db ~src:"p.exp" ~table:"other"))

let import_rejects_foreign_product () =
  let db = mk_parts () in
  seed_parts db 5;
  ignore (Export_util.export_table db ~table:"parts" ~dest:"p.exp" () : Export_util.stats);
  (* corrupt the product tag *)
  let f = Vfs.open_existing (Db.vfs db) "p.exp" in
  Vfs.write_at f ~off:7 (Bytes.of_string "XX");
  Vfs.close f;
  match Import_util.import_table db ~src:"p.exp" ~table:"parts" with
  | Error e -> check Alcotest.bool "product error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected product rejection"

let ascii_dump_load_roundtrip () =
  let db = mk_parts () in
  seed_parts db 150;
  let d = Ascii_util.dump db ~table:"parts" ~dest:"parts.asc" () in
  check Alcotest.int "dumped" 150 d.Ascii_util.rows;
  let _ = Db.create_table db ~name:"parts2" ~ts_column:"last_modified" parts_schema in
  (match Ascii_util.load db ~table:"parts2" ~src:"parts.asc" with
   | Ok s ->
     check Alcotest.int "loaded" 150 s.Ascii_util.rows;
     check Alcotest.int "no bad lines" 0 s.Ascii_util.bad_lines
   | Error e -> Alcotest.fail e);
  (* loader rebuilt indexes: key lookup works *)
  match Table.find_key (Db.table db "parts2") [| Value.Int 42 |] with
  | Some (_, t) -> check Alcotest.bool "row 42" true (Tuple.get parts_schema t "part_id" = Value.Int 42)
  | None -> Alcotest.fail "index lookup after load"

let ascii_dump_where () =
  let db = mk_parts () in
  seed_parts db 50;
  let d =
    Ascii_util.dump db ~table:"parts"
      ~where:(Expr.Cmp (Expr.Le, Expr.Col "part_id", Expr.Lit (Value.Int 10)))
      ~dest:"some.asc" ()
  in
  check Alcotest.int "filtered dump" 10 d.Ascii_util.rows

let loader_skips_bad_lines () =
  let db = mk_parts () in
  let vfs = Db.vfs db in
  let f = Vfs.create vfs "bad.asc" in
  ignore (Vfs.append f (Bytes.of_string "1|ok|5|100\nnot-a-row\n2|ok|6|100\n") : int);
  Vfs.close f;
  match Ascii_util.load db ~table:"parts" ~src:"bad.asc" with
  | Ok s ->
    check Alcotest.int "good rows" 2 s.Ascii_util.rows;
    check Alcotest.int "bad rows" 1 s.Ascii_util.bad_lines
  | Error e -> Alcotest.fail e

(* ---------- checkpoint / recovery ---------- *)

let crash_recovery_end_to_end () =
  let db = mk_parts () in
  seed_parts db 10;
  (* committed update *)
  ignore
    (Db.with_txn db (fun txn ->
         Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int 77)) ]
           ~where:(Some eq_int)));
  (* in-flight txn at crash time *)
  let txn = Db.begin_txn db in
  ignore (Db.insert db txn "parts" (part 999 "ghost" 0) : Heap_file.rid);
  (* "crash": run recovery over the same heaps (redo winners, undo losers) *)
  let stats = Db.recover db in
  check Alcotest.bool "some records" true (stats.Dw_txn.Recovery.records_scanned > 0);
  check Alcotest.int "rows" 10 (Table.row_count (Db.table db "parts"));
  let tbl = Db.table db "parts" in
  (match Table.find_key tbl [| Value.Int 5 |] with
   | Some (_, t) -> check Alcotest.bool "redo kept update" true (Tuple.get parts_schema t "qty" = Value.Int 77)
   | None -> Alcotest.fail "row 5 missing");
  check Alcotest.bool "ghost gone" true (Table.find_key tbl [| Value.Int 999 |] = None)

let checkpoint_rotates () =
  let db = mk_parts ~archive:true () in
  seed_parts db 5;
  Db.checkpoint db;
  seed_parts db 0;
  check Alcotest.bool "archived segment exists" true
    (List.length (Dw_txn.Wal.archived_segments (Db.wal db)) >= 1)

(* ---------- plan modes ---------- *)

(* qcheck: index-assisted predicate resolution returns exactly what a scan
   returns, for arbitrary range/equality predicates over the key *)
let gen_pred =
  QCheck2.Gen.(
    let lit = map (fun n -> Expr.Lit (Value.Int n)) (int_range (-5) 45) in
    let cmp_op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
    let key_cmp =
      map3
        (fun op l flip ->
          if flip then Expr.Cmp (op, l, Expr.Col "part_id")
          else Expr.Cmp (op, Expr.Col "part_id", l))
        cmp_op lit bool
    in
    let other_cmp = map2 (fun op l -> Expr.Cmp (op, Expr.Col "qty", l)) cmp_op lit in
    let base = oneof [ key_cmp; other_cmp ] in
    oneof
      [
        base;
        map2 (fun a b -> Expr.And (a, b)) base base;
        map2 (fun a b -> Expr.Or (a, b)) base base;
        map2 (fun a b -> Expr.And (a, Expr.And (b, a))) base base;
        map (fun a -> Expr.Not a) base;
      ])

let prop_plan_modes_agree =
  QCheck2.Test.make ~name:"Index_preferred matches Scan_only" ~count:200 gen_pred (fun pred ->
      let db = mk_parts () in
      seed_parts db 40;
      let run mode =
        Db.set_plan_mode db mode;
        Db.with_txn db (fun txn -> Db.select db txn "parts" ~where:pred ())
        |> List.sort Tuple.compare
      in
      let scan = run `Scan_only in
      let idx = run `Index_preferred in
      List.length scan = List.length idx && List.for_all2 Tuple.equal scan idx)

let prop_plan_modes_agree_dml =
  QCheck2.Test.make ~name:"Index_preferred DML matches Scan_only DML" ~count:100 gen_pred
    (fun pred ->
      let run mode =
        let db = mk_parts () in
        seed_parts db 30;
        Db.set_plan_mode db mode;
        ignore
          (Db.with_txn db (fun txn ->
               Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int 777)) ]
                 ~where:(Some pred)));
        ignore
          (Db.with_txn db (fun txn -> Db.delete_where db txn "parts" ~where:(Some (Expr.Not pred))));
        List.sort Tuple.compare
          (Db.with_txn db (fun txn -> Db.select db txn "parts" ()))
      in
      let scan = run `Scan_only in
      let idx = run `Index_preferred in
      List.length scan = List.length idx && List.for_all2 Tuple.equal scan idx)

(* qcheck: random committed workload survives recovery *)

type wop = W_ins of int * int | W_upd of int * int | W_del of int

let gen_workload =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (frequency
         [
           (4, map2 (fun k v -> W_ins (k, v)) (int_range 0 40) (int_range 0 999));
           (2, map2 (fun k v -> W_upd (k, v)) (int_range 0 40) (int_range 0 999));
           (2, map (fun k -> W_del k) (int_range 0 40));
         ]))

let apply_op db txn op =
  match op with
  | W_ins (k, v) -> (
      let tbl = Db.table db "parts" in
      match Table.find_key tbl [| Value.Int k |] with
      | Some _ -> ()
      | None ->
        ignore (Db.insert db txn "parts" (part k ("k" ^ string_of_int k) v) : Heap_file.rid))
  | W_upd (k, v) ->
    ignore
      (Db.update_where db txn "parts" ~set:[ ("qty", Expr.Lit (Value.Int v)) ]
         ~where:(Some (Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int k)))) : int)
  | W_del k ->
    ignore
      (Db.delete_where db txn "parts"
         ~where:(Some (Expr.Cmp (Expr.Eq, Expr.Col "part_id", Expr.Lit (Value.Int k)))) : int)

let table_contents db name =
  let acc = ref [] in
  Table.scan (Db.table db name) (fun _ t -> acc := t :: !acc);
  List.sort Tuple.compare !acc

let prop_recovery_preserves_committed =
  QCheck2.Test.make ~name:"recovery preserves committed state" ~count:60 gen_workload
    (fun ops ->
      let db = mk_parts () in
      (* one txn per op, all committed *)
      List.iter (fun op -> Db.with_txn db (fun txn -> apply_op db txn op)) ops;
      let before = table_contents db "parts" in
      (* plus one loser txn *)
      let txn = Db.begin_txn db in
      apply_op db txn (W_ins (777, 1));
      (* crash now: recovery must restore exactly the committed state *)
      ignore (Db.recover db : Dw_txn.Recovery.stats);
      let after = table_contents db "parts" in
      List.length before = List.length after
      && List.for_all2 Tuple.equal before after)

let suite =
  [
    test "dml insert/select" dml_insert_select;
    test "dml update" dml_update;
    test "dml delete" dml_delete;
    test "dml duplicate key" dml_duplicate_key;
    test "txn abort rolls back" txn_abort_rolls_back;
    test "txn abort restores values" txn_abort_restores_values;
    test "txn finished rejected" txn_finished_rejected;
    test "timestamps maintained" ts_maintained;
    test "trigger captures images" trigger_captures_images;
    test "trigger same-txn rollback" trigger_same_txn_rollback;
    test "trigger selective events" trigger_selective_events;
    test "trigger remove" trigger_remove;
    test "sql end to end" sql_end_to_end;
    test "sql aggregates" sql_aggregates;
    test "sql errors" sql_errors;
    test "export/import roundtrip" export_import_roundtrip;
    test "import rejects wrong schema" import_rejects_wrong_schema;
    test "import rejects foreign product" import_rejects_foreign_product;
    test "ascii dump/load roundtrip" ascii_dump_load_roundtrip;
    test "ascii dump where" ascii_dump_where;
    test "loader skips bad lines" loader_skips_bad_lines;
    test "crash recovery end to end" crash_recovery_end_to_end;
    test "checkpoint rotates" checkpoint_rotates;
    QCheck_alcotest.to_alcotest prop_plan_modes_agree;
    QCheck_alcotest.to_alcotest prop_plan_modes_agree_dml;
    QCheck_alcotest.to_alcotest prop_recovery_preserves_committed;
  ]
