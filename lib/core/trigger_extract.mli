(** Trigger-based delta extraction (paper Section 3, method 3; overheads
    measured in Figure 2).

    [install] creates a delta table [<table>__delta] and registers a
    row-level AFTER trigger on the source table that writes, inside the
    user transaction:
    - the new values for each inserted row;
    - the old values for each deleted row;
    - the old {e and} new values for each updated row (two rows).

    This is precisely the capture policy of the paper's Figure 2
    experiment, and the per-row triggered insert is the measured
    overhead.  [collect] reads the delta table back into a {!Delta.t}
    (optionally draining it), reconstructing updates from adjacent
    old/new rows; transaction boundaries are {e not} recoverable — the
    delta table does not record them, which is the paper's criticism. *)

module Db = Dw_engine.Db
module Schema = Dw_relation.Schema

type handle

val install : Db.t -> table:string -> handle
(** Raises [Invalid_argument] if already installed on this table. *)

val uninstall : Db.t -> handle -> unit
(** Removes the trigger; the delta table stays until dropped. *)

val delta_table_name : handle -> string
val source_table : handle -> string

val capture_units : images:int -> float
(** Deterministic {e source-side} overhead estimate in abstract row-visit
    units: each captured image is one extra triggered insert inside the
    user transaction (an update writes two) — the Figure 2 overhead the
    planner charges against this method when source contention matters. *)

val work_units : images:int -> float
(** Deterministic {e extraction-side} work estimate in abstract row-visit
    units — the cost hook {!Dw_etl.Planner} calibrates and compares
    across methods: {!collect} reads each captured image back out of the
    delta table once. *)

val collect : ?drain:bool -> Db.t -> handle -> Delta.t
(** Rows in capture order.  [drain] (default false) empties the delta
    table afterwards. *)

val export_delta :
  Db.t -> handle -> dest:string -> Dw_engine.Export_util.stats
(** The additional step the paper notes: moving the delta table out of
    the source system with the Export utility. *)
