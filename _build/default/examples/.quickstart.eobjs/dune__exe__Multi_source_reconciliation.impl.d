examples/multi_source_reconciliation.ml: Dw_core Dw_cots Dw_sql Dw_workload Format List Printf
