lib/sql/lexer.mli:
