(** Value deltas — the differential-file representation every extraction
    method of Section 3 produces.

    A value delta carries row {e images}: the after image for inserts, the
    before image for deletes, both for updates.  Timestamp- and
    snapshot-based methods can only observe the final state of a row, so
    they produce [Upsert] entries (and, for snapshots, [Delete]s) without
    intermediate state changes.

    Crucially — and this is the paper's point — a value delta {e loses the
    source transaction boundaries}: it is one flat batch that must be
    applied to the warehouse as an indivisible unit. *)

module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple

type change =
  | Insert of Tuple.t                  (** after image *)
  | Delete of Tuple.t                  (** before image *)
  | Update of Tuple.t * Tuple.t        (** before, after *)
  | Upsert of Tuple.t
      (** final-state row from a method that cannot distinguish insert
          from update (timestamp extraction) *)

type t = {
  table : string;
  schema : Schema.t;
  changes : change list;  (** in capture order *)
}

val make : table:string -> schema:Schema.t -> change list -> t

val row_count : t -> int
(** Number of change entries. *)

val image_count : t -> int
(** Number of row images carried (updates carry two). *)

val size_bytes : t -> int
(** Wire volume: record width × {!image_count} — what must travel from
    source to warehouse. *)

val change_key : Schema.t -> change -> Tuple.t

val concat : t list -> t
(** Concatenate batches for the same table/schema.
    Raises [Invalid_argument] on mismatch or empty list. *)

val apply_to_rows : t -> Tuple.t list -> Tuple.t list
(** Replay onto a bag of rows keyed by primary key (model semantics used
    by tests): Insert adds (error if key exists), Delete removes by key,
    Update/Upsert replace by key (Upsert adds when absent). *)

val compact : t -> t
(** Collapse each key's change chain into its net effect (the classic
    differential-file optimisation): insert∘update* → one insert of the
    final image, update∘update → one update from the first before-image
    to the last after-image, insert∘…∘delete → nothing, delete∘insert →
    an update, etc.  [Upsert] entries absorb like updates.  The result
    applies to any base state exactly like the original
    ({!apply_to_rows}-equivalence is property-tested), in at most one
    change per key, ordered by key. *)

val pp : Format.formatter -> t -> unit

(** {2 Wire format} — one line per change ([I]/[D]/[U]/[S] tag plus ASCII
    record images), for shipping differential files through the transport
    layer. *)

val to_lines : t -> string list
val of_lines : table:string -> schema:Schema.t -> string list -> (t, string) result
