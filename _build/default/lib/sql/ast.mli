(** Abstract syntax of the SQL dialect.

    This dialect is exactly what Op-Delta needs to describe source
    operations: single-table [SELECT] / [INSERT] / [UPDATE] / [DELETE]
    plus [CREATE TABLE].  Expressions are {!Dw_relation.Expr.t}. *)

module Expr = Dw_relation.Expr
module Value = Dw_relation.Value

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Item of Expr.t * string option  (** expression with optional AS alias *)
  | Agg of agg_fn * Expr.t option * string option
      (** aggregate over an expression ([None] only for [Count_star]),
          with optional AS alias *)

type column_def = {
  col_name : string;
  col_ty : Value.ty;
  col_nullable : bool;
  col_key : bool;
}

type stmt =
  | Select of {
      items : select_item list;
      table : string;
      where : Expr.t option;
      group_by : string list;
      order_by : string list;
    }
  | Insert of {
      table : string;
      columns : string list option;  (** [None] = schema order *)
      rows : Value.t list list;
    }
  | Update of {
      table : string;
      sets : (string * Expr.t) list;
      where : Expr.t option;
    }
  | Delete of {
      table : string;
      where : Expr.t option;
    }
  | Create_table of {
      table : string;
      columns : column_def list;
    }

val table_of : stmt -> string
val is_dml : stmt -> bool
(** INSERT/UPDATE/DELETE. *)

val equal : stmt -> stmt -> bool
