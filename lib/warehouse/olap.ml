module Db = Dw_engine.Db
module Metrics = Dw_util.Metrics

type query = { name : string; sql : string }

let standard_queries ~table =
  [
    { name = "row count"; sql = Printf.sprintf "SELECT COUNT(*) FROM %s" table };
    {
      name = "stock value";
      sql = Printf.sprintf "SELECT SUM(qty) AS units, SUM(price) AS value FROM %s" table;
    };
    {
      name = "per-qty histogram";
      sql =
        Printf.sprintf "SELECT qty, COUNT(*) AS n, AVG(price) FROM %s GROUP BY qty ORDER BY qty"
          table;
    };
    {
      name = "low-stock price extremes";
      sql =
        Printf.sprintf "SELECT MIN(price), MAX(price) FROM %s WHERE qty < 100" table;
    };
    {
      name = "id band";
      sql =
        Printf.sprintf
          "SELECT part_id, price FROM %s WHERE part_id >= 100 AND part_id < 200 ORDER BY part_id"
          table;
    };
  ]

type query_result = { query : string; rows : int; duration : float }

let finish_query ~name ~duration outcome =
  match outcome with
  | Ok (Db.Rows { rows; _ }) -> Ok { query = name; rows = List.length rows; duration }
  | Ok (Db.Affected _ | Db.Created) -> Error (name ^ ": not a query")
  | Error e -> Error (name ^ ": " ^ e)

let run ?(mode = `Snapshot) wh q =
  let db = Warehouse.db wh in
  (* timed on the metrics registry clock, so simulated-time runs report
     simulated durations and the olap.query histogram fills in *)
  let timer = Metrics.start_timer (Db.metrics db) "olap.query" in
  let txn = Db.begin_txn ~mode db in
  let outcome = Db.exec_sql db txn q.sql in
  (* read-only: anything but a row set is rolled back *)
  (match outcome with Ok (Db.Rows _) -> Db.commit db txn | Ok _ | Error _ -> Db.abort db txn);
  let duration = Metrics.stop_timer timer in
  finish_query ~name:q.name ~duration outcome

let run_parallel ?partitions ~pool wh q =
  let db = Warehouse.db wh in
  let timer = Metrics.start_timer (Db.metrics db) "olap.query_parallel" in
  let txn = Db.begin_txn ~mode:`Snapshot db in
  let outcome = Par_scan.exec_sql ?partitions ~pool db txn q.sql in
  (match outcome with Ok (Db.Rows _) -> Db.commit db txn | Ok _ | Error _ -> Db.abort db txn);
  let duration = Metrics.stop_timer timer in
  finish_query ~name:q.name ~duration outcome

let run_all ?mode wh queries =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | q :: rest -> (
        match run ?mode wh q with
        | Ok r -> go (r :: acc) rest
        | Error e -> (List.rev acc, Some e))
  in
  go [] queries

let run_all_parallel ?partitions ~pool wh queries =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | q :: rest -> (
        match run_parallel ?partitions ~pool wh q with
        | Ok r -> go (r :: acc) rest
        | Error e -> (List.rev acc, Some e))
  in
  go [] queries
