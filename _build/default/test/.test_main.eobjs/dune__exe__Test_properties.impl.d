test/test_properties.ml: Alcotest Bytes Dw_core Dw_relation Dw_sql Dw_storage Dw_txn Dw_util Dw_workload List QCheck2 QCheck_alcotest
