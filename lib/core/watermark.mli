(** Extraction watermarks: the persistent per-table "where did the last
    extraction round stop" state that every periodic delta-extraction
    deployment needs (the [last_modified_date > 12/5/99] of the paper's
    running example, plus the log position for the log-based method).

    State is an append-only journal on a {!Dw_storage.Vfs.t}: every
    {!advance} / {!set_cursor} appends one FNV-1a-checksummed record and
    fsyncs, so an extraction agent that crashes re-extracts at most one
    round (at-least-once, pairing with the transport queue's redelivery).
    {!load} replays the journal and stops at the first record whose
    checksum fails — a torn tail from a crash mid-append falls back to
    the last durable state instead of raising or dropping other tables'
    marks.  The journal grows by one short line per advance and is never
    compacted; watermark traffic is a handful of records per refresh
    round, so growth is negligible next to the data it tracks. *)

type t

type mark = {
  day : int;                  (** last timestamp-watermark extracted through *)
  lsn : Dw_txn.Wal.lsn;       (** first log position NOT yet extracted *)
}

type cursor = {
  next_key : int;             (** first primary key NOT yet chunk-loaded *)
  chunks_done : int;          (** chunks durably applied by the bootstrap *)
}
(** Keyset-pagination progress of a chunked bootstrap load
    ({!Dw_etl.Bootstrap}): present only while a table is bootstrapping. *)

val load : Dw_storage.Vfs.t -> name:string -> t
(** Open (or create) the watermark journal [name], replaying valid
    records; a corrupt tail is truncated away so recovery appends stay
    visible to later loads. *)

val get : t -> table:string -> mark
(** [{ day = -1; lsn = 0 }] for a table never extracted. *)

val advance : t -> table:string -> mark -> unit
(** Persist a new mark.  Marks may only move forward; raises
    [Invalid_argument] on regression. *)

val cursor : t -> table:string -> cursor option
(** Chunk cursor for a bootstrapping table, [None] once complete. *)

val set_cursor : t -> table:string -> cursor -> unit
(** Persist bootstrap chunk progress.  [chunks_done] may only move
    forward; raises [Invalid_argument] on regression (clear first to
    restart a load from scratch). *)

val clear_cursor : t -> table:string -> unit
(** Drop the chunk cursor (bootstrap finished or abandoned); no-op if
    none is set. *)

val tables : t -> string list
(** Tables with recorded marks, sorted. *)
