lib/core/log_extract.mli: Delta Dw_engine Dw_txn
