module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Codec = Dw_relation.Codec
module Vfs = Dw_storage.Vfs
module Buffer_pool = Dw_storage.Buffer_pool
module Heap_file = Dw_storage.Heap_file
module Wal = Dw_txn.Wal
module Group_commit = Dw_txn.Group_commit
module Log_record = Dw_txn.Log_record
module Lock_manager = Dw_txn.Lock_manager
module Version_store = Dw_txn.Version_store
module Recovery = Dw_txn.Recovery
module Ast = Dw_sql.Ast

exception Would_block of { tx : int; blockers : int list }
exception Deadlock_abort of { tx : int; blockers : int list }

type undo =
  | U_insert of string * Heap_file.rid * Tuple.t
  | U_delete of string * Heap_file.rid * Tuple.t
  | U_update of string * Heap_file.rid * Tuple.t * Tuple.t  (* before, after *)

type txn = {
  id : int;
  mode : [ `Read_write | `Snapshot ];
  snapshot_csn : int;  (* last committed CSN at begin; reads resolve against it *)
  mutable undo_log : undo list;
  mutable in_trigger : bool;
  mutable finished : bool;
}

type trigger_ctx = { ctx_db : t; ctx_txn : txn }

and t = {
  db_name : string;
  vfs : Vfs.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  locks : Lock_manager.t;
  vstore : Dw_txn.Version_store.t;
  mutable last_csn : int;  (* CSN of the newest commit record in the WAL *)
  tables : (string, Table.t) Hashtbl.t;
  triggers : (string, trigger_ctx Trigger.t list ref) Hashtbl.t;
  mutable next_txid : int;
  mutable active : (int, txn) Hashtbl.t;
  mutable day : int;
  mutable plan_mode : [ `Scan_only | `Index_preferred ];
  mutable sync_mode : [ `Every_commit | `Group of int | `Group_policy of Group_commit.policy ];
  group : Group_commit.t;
  mutable yield_hook : (unit -> unit) option;
  mutable block_hook : (txid:int -> blockers:int list -> unit) option;
  (* serialises txid allocation, the active-transaction table, and the
     commit CSN-bump + version publish pair, so snapshot transactions
     can begin/end on reader domains while a writer domain commits; a
     reader must never observe the new last_csn before the writer's
     version entries are published under it *)
  txn_lock : Mutex.t;
}

let create ?(pool_pages = 256) ?(pool_stripes = 1) ?(archive_log = false) ~vfs ~name () =
  let wal = Wal.create vfs ~name:(name ^ ".wal") ~archive:archive_log in
  {
    db_name = name;
    vfs;
    pool = Buffer_pool.create ~stripes:pool_stripes ~vfs ~capacity:pool_pages ();
    wal;
    locks = Lock_manager.create ~metrics:(Vfs.metrics vfs) ();
    vstore = Version_store.create ();
    last_csn = 0;
    tables = Hashtbl.create 16;
    triggers = Hashtbl.create 16;
    next_txid = 1;
    active = Hashtbl.create 8;
    day = Value.(match date_of_ymd ~year:1999 ~month:12 ~day:5 with Date d -> d | _ -> 0);
    plan_mode = `Scan_only;
    sync_mode = `Every_commit;
    group = Group_commit.create wal;
    yield_hook = None;
    block_hook = None;
    txn_lock = Mutex.create ();
  }

let name t = t.db_name
let vfs t = t.vfs
let metrics t = Vfs.metrics t.vfs
let wal t = t.wal
let locks t = t.locks
let pool t = t.pool

let plan_mode t = t.plan_mode
let set_plan_mode t mode = t.plan_mode <- mode

let sync_mode t = t.sync_mode

let set_sync_mode t mode =
  (match mode with
   | `Group n when n < 1 -> invalid_arg "Db.set_sync_mode: group size < 1"
   | `Group_policy p -> Group_commit.validate_policy p
   | `Group _ | `Every_commit -> ());
  (* commits acknowledged under the old policy must not wait on the new
     one (set_policy flushes, but Every_commit bypasses it) *)
  Group_commit.sync t.group;
  (match mode with
   | `Every_commit -> ()
   | `Group n -> Group_commit.set_policy t.group { Group_commit.max_group = n; max_wait_s = infinity }
   | `Group_policy p -> Group_commit.set_policy t.group p);
  t.sync_mode <- mode

let sync t = Group_commit.sync t.group
let pending_group_commits t = Group_commit.pending t.group

let set_yield_hook t hook = t.yield_hook <- hook
let set_block_hook t hook = t.block_hook <- hook

let statement_boundary t =
  (* a commit lull must not starve a waiting group leader: the max-wait
     deadline is re-checked whenever any session reaches a statement
     boundary (free when no group is open) *)
  Group_commit.poll t.group;
  match t.yield_hook with Some f -> f () | None -> ()

let current_day t = t.day
let set_day t d = t.day <- d
let advance_day t = t.day <- t.day + 1

(* schema *)

let heap_file_name db_name table_name = Printf.sprintf "%s.%s.heap" db_name table_name

let create_table t ~name ?ts_column schema =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Db.create_table: table %s exists" name);
  let file = Vfs.create t.vfs (heap_file_name t.db_name name) in
  let table = Table.create ~pool:t.pool ~file ~name ~schema ~ts_column in
  Hashtbl.add t.tables name table;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.tables name

let tables t =
  Hashtbl.fold (fun _ table acc -> table :: acc) t.tables []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))

let drop_table t name =
  match Hashtbl.find_opt t.tables name with
  | None -> raise Not_found
  | Some table ->
    Hashtbl.remove t.tables name;
    Hashtbl.remove t.triggers name;
    Version_store.drop_table t.vstore ~table:name;
    let file = Heap_file.file (Table.heap table) in
    Buffer_pool.invalidate_file t.pool file;
    Vfs.close file;
    Vfs.delete t.vfs (heap_file_name t.db_name name)

(* transactions *)

let last_csn t = t.last_csn
let version_store t = t.vstore

(* the oldest snapshot any active reader holds; with no readers the
   newest committed CSN — entries superseded at or below it are dead *)
let locked_txn t f = Mutex.protect t.txn_lock f

let gc_horizon t =
  locked_txn t (fun () ->
      Hashtbl.fold
        (fun _ txn acc -> if txn.mode = `Snapshot then min txn.snapshot_csn acc else acc)
        t.active t.last_csn)

let vstore_gc t =
  if Version_store.entries t.vstore > 0 then
    ignore (Version_store.gc t.vstore ~horizon:(gc_horizon t) : int)

let begin_txn ?(mode = `Read_write) t =
  let txn =
    locked_txn t (fun () ->
        let id = t.next_txid in
        t.next_txid <- id + 1;
        let txn =
          { id; mode; snapshot_csn = t.last_csn; undo_log = []; in_trigger = false;
            finished = false }
        in
        Hashtbl.add t.active id txn;
        txn)
  in
  (* snapshot transactions log nothing: they cannot write, so neither
     recovery nor the group-commit barrier ever needs to see them *)
  if mode = `Read_write then
    ignore (Wal.append t.wal { Log_record.tx = txn.id; body = Log_record.Begin } : Wal.lsn);
  txn

let txid txn = txn.id
let txn_mode txn = txn.mode
let snapshot_csn txn = txn.snapshot_csn

let check_live txn =
  if txn.finished then invalid_arg "Db: transaction already finished"

let check_writable txn =
  check_live txn;
  if txn.mode = `Snapshot then invalid_arg "Db: snapshot transaction is read-only"

let finish t txn =
  txn.finished <- true;
  locked_txn t (fun () -> Hashtbl.remove t.active txn.id);
  Lock_manager.release_all t.locks txn.id

let commit t txn =
  check_live txn;
  match txn.mode with
  | `Snapshot ->
    (* read-only: nothing to log or flush; its exit may unpin versions *)
    finish t txn;
    vstore_gc t
  | `Read_write ->
    ignore (Wal.append t.wal { Log_record.tx = txn.id; body = Log_record.Commit } : Wal.lsn);
    (* the CSN is assigned in WAL commit-record order; under group commit
       the fsync is deferred but in-process visibility is immediate, so
       publication happens here either way *)
    locked_txn t (fun () ->
        let csn = t.last_csn + 1 in
        t.last_csn <- csn;
        (* publish under the same critical section as the CSN bump: a
           snapshot beginning between the two would read the new CSN but
           resolve through still-pending entries to the old images *)
        Version_store.publish t.vstore ~tx:txn.id ~csn);
    (match t.sync_mode with
     | `Every_commit -> Wal.flush t.wal
     | `Group _ | `Group_policy _ -> Group_commit.note_commit t.group);
    finish t txn;
    vstore_gc t

let abort_rw t txn =
  (* reverse-apply undo entries; raw ops keep indexes consistent *)
  List.iter
    (fun entry ->
      match entry with
      | U_insert (tname, rid, tuple) ->
        (match table_opt t tname with
         | Some table -> Table.raw_delete table rid ~old_tuple:tuple
         | None -> ())
      | U_delete (tname, rid, tuple) ->
        (* restore at the exact original rid: version chains are keyed by
           rid, so the row must not migrate slots while snapshots are live *)
        (match table_opt t tname with
         | Some table -> Table.raw_insert_at table rid tuple
         | None -> ())
      | U_update (tname, rid, before, after) ->
        (match table_opt t tname with
         | Some table -> Table.raw_update table rid ~old_tuple:after before
         | None -> ()))
    txn.undo_log;
  txn.undo_log <- [];
  ignore (Wal.append t.wal { Log_record.tx = txn.id; body = Log_record.Abort } : Wal.lsn);
  (* the abort record must always reach the device; the same fsync covers
     any commits still pending in an open group *)
  Group_commit.flush_now t.group;
  (* the undo pass restored the heap, so the noted before-images now
     describe nothing: drop them before readers could resolve through them *)
  Version_store.discard t.vstore ~tx:txn.id;
  finish t txn

let abort t txn =
  check_live txn;
  if txn.mode = `Snapshot then begin
    finish t txn;
    vstore_gc t
  end
  else abort_rw t txn

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
    commit t txn;
    result
  | exception e ->
    (* a fail-stop fault means the simulated process is dead: skip the
       in-memory undo pass.  The crash can land between a physical apply
       and its undo note (e.g. inside a trigger's WAL append), so the
       undo log no longer matches the heap — and recovery rebuilds from
       the WAL on reopen anyway *)
    (match e with
     | Dw_storage.Vfs.Fault.Crash _ -> ()
     | _ -> if not txn.finished then abort t txn);
    raise e

let active_txns t =
  locked_txn t (fun () -> Hashtbl.fold (fun id _ acc -> id :: acc) t.active [])
  |> List.sort compare

(* locking *)

let rec acquire t txn resource mode =
  match Lock_manager.acquire t.locks txn.id resource mode with
  | Lock_manager.Granted -> ()
  | Lock_manager.Blocked blockers -> (
      match t.block_hook with
      | Some wait ->
        (* one observed sample per wait episode; a txn blocked repeatedly
           on the same resource contributes one sample per suspension *)
        Dw_util.Metrics.time (metrics t) "lock.wait" (fun () -> wait ~txid:txn.id ~blockers);
        acquire t txn resource mode
      | None -> raise (Would_block { tx = txn.id; blockers }))
  | Lock_manager.Deadlock blockers -> raise (Deadlock_abort { tx = txn.id; blockers })

(* triggers *)

let triggers_for t tname =
  match Hashtbl.find_opt t.triggers tname with Some l -> !l | None -> []

let add_trigger t ~table trigger =
  if not (Hashtbl.mem t.tables table) then raise Not_found;
  let cell =
    match Hashtbl.find_opt t.triggers table with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add t.triggers table cell;
      cell
  in
  if List.exists (fun (tr : trigger_ctx Trigger.t) -> tr.Trigger.name = trigger.Trigger.name) !cell
  then invalid_arg (Printf.sprintf "Db.add_trigger: trigger %s exists" trigger.Trigger.name);
  cell := !cell @ [ trigger ]

let remove_trigger t ~table name =
  match Hashtbl.find_opt t.triggers table with
  | None -> ()
  | Some cell ->
    cell := List.filter (fun (tr : trigger_ctx Trigger.t) -> tr.Trigger.name <> name) !cell

let triggers_on t tname =
  List.map (fun (tr : trigger_ctx Trigger.t) -> tr.Trigger.name) (triggers_for t tname)

let fire t txn tname event =
  if not txn.in_trigger then begin
    let relevant = List.filter (fun tr -> Trigger.fires_on tr event) (triggers_for t tname) in
    if relevant <> [] then begin
      txn.in_trigger <- true;
      Fun.protect
        ~finally:(fun () -> txn.in_trigger <- false)
        (fun () -> List.iter (fun tr -> tr.Trigger.action { ctx_db = t; ctx_txn = txn } event) relevant)
    end
  end

(* timestamp maintenance *)

let stamp t table tuple =
  match Table.ts_column table with
  | None -> tuple
  | Some col -> Tuple.set (Table.schema table) tuple col (Value.Date t.day)

(* DML *)

let log_dml t body = ignore (Wal.append t.wal body : Wal.lsn)

let insert t txn tname tuple =
  check_writable txn;
  statement_boundary t;
  let table = table t tname in
  acquire t txn (Lock_manager.Table tname) Lock_manager.X;
  let tuple = stamp t table tuple in
  let rid = Table.raw_insert table tuple in
  Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:None;
  log_dml t
    {
      Log_record.tx = txn.id;
      body =
        Log_record.Insert
          { table = tname; rid; after = Codec.encode_binary (Table.schema table) tuple };
    };
  txn.undo_log <- U_insert (tname, rid, tuple) :: txn.undo_log;
  fire t txn tname (Trigger.Inserted (rid, tuple));
  rid

let insert_values t txn tname ~columns values =
  let tbl = table t tname in
  let schema = Table.schema tbl in
  let tuple =
    match columns with
    | None ->
      if List.length values <> Schema.arity schema then
        invalid_arg "Db.insert_values: arity mismatch";
      Array.of_list values
    | Some cols ->
      if List.length cols <> List.length values then
        invalid_arg "Db.insert_values: columns/values length mismatch";
      let tuple = Array.make (Schema.arity schema) Value.Null in
      List.iter2 (fun col v -> tuple.(Schema.index_of schema col) <- v) cols values;
      tuple
  in
  insert t txn tname tuple

let check_columns schema expr =
  List.iter
    (fun col ->
      if not (Schema.mem schema col) then
        invalid_arg (Printf.sprintf "unknown column %s" col))
    (Expr.columns expr)

(* conservative bound extraction: conjunctions of comparisons between the
   leading key column and literals imply an index range; anything else
   contributes no bound (still sound: bounds only narrow the scan and the
   full predicate re-filters) *)
let key_bounds schema where =
  let key_col = (Schema.column schema 0).Schema.name in
  let max_v a b = if Value.compare a b >= 0 then a else b in
  let min_v a b = if Value.compare a b <= 0 then a else b in
  let lo = ref None and hi = ref None in
  let set_lo v = lo := (match !lo with None -> Some v | Some x -> Some (max_v x v)) in
  let set_hi v = hi := (match !hi with None -> Some v | Some x -> Some (min_v x v)) in
  let succ_v = function Value.Int n -> Some (Value.Int (n + 1)) | Value.Date n -> Some (Value.Date (n + 1)) | _ -> None in
  let pred_v = function Value.Int n -> Some (Value.Int (n - 1)) | Value.Date n -> Some (Value.Date (n - 1)) | _ -> None in
  let rec go e =
    match e with
    | Expr.And (a, b) -> go a; go b
    | Expr.Cmp (op, Expr.Col c, Expr.Lit v) when c = key_col && not (Value.is_null v) ->
      (match op with
       | Expr.Eq -> set_lo v; set_hi v
       | Expr.Ge -> set_lo v
       | Expr.Gt -> (match succ_v v with Some v' -> set_lo v' | None -> ())
       | Expr.Le -> set_hi v
       | Expr.Lt -> (match pred_v v with Some v' -> set_hi v' | None -> ())
       | Expr.Neq -> ())
    | Expr.Cmp (op, Expr.Lit v, Expr.Col c) when c = key_col && not (Value.is_null v) ->
      (match op with
       | Expr.Eq -> set_lo v; set_hi v
       | Expr.Le -> set_lo v
       | Expr.Lt -> (match succ_v v with Some v' -> set_lo v' | None -> ())
       | Expr.Ge -> set_hi v
       | Expr.Gt -> (match pred_v v with Some v' -> set_hi v' | None -> ())
       | Expr.Neq -> ())
    | Expr.Cmp _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _ | Expr.Is_not_null _
    | Expr.Col _ | Expr.Lit _ | Expr.Binop _ ->
      ()
  in
  go where;
  (!lo, !hi)

let matching ?(mode = `Scan_only) table where =
  let schema = Table.schema table in
  (match where with Some e -> check_columns schema e | None -> ());
  let acc = ref [] in
  let visit rid tuple =
    let keep = match where with None -> true | Some e -> Expr.eval_pred schema tuple e in
    if keep then acc := (rid, tuple) :: !acc
  in
  (match mode, where with
   | `Index_preferred, Some e -> (
       match key_bounds schema e with
       | (None, None) -> Table.scan table visit
       | (lo, hi) -> Table.key_range table ~lo ~hi visit)
   | (`Scan_only | `Index_preferred), _ -> Table.scan table visit);
  List.sort (fun (a, _) (b, _) -> Heap_file.rid_compare a b) (List.rev !acc)

let update_where t txn tname ~set ~where =
  check_writable txn;
  statement_boundary t;
  let table = table t tname in
  acquire t txn (Lock_manager.Table tname) Lock_manager.X;
  let schema = Table.schema table in
  List.iter
    (fun (col, e) ->
      if not (Schema.mem schema col) then invalid_arg (Printf.sprintf "unknown column %s" col);
      check_columns schema e)
    set;
  let victims = matching ~mode:t.plan_mode table where in
  List.iter
    (fun (rid, before) ->
      let after0 =
        List.fold_left
          (fun tuple (col, e) -> Tuple.set schema tuple col (Expr.eval schema before e))
          before set
      in
      let after = stamp t table after0 in
      Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:(Some before);
      Table.raw_update table rid ~old_tuple:before after;
      log_dml t
        {
          Log_record.tx = txn.id;
          body =
            Log_record.Update
              {
                table = tname;
                rid;
                before = Codec.encode_binary schema before;
                after = Codec.encode_binary schema after;
              };
        };
      txn.undo_log <- U_update (tname, rid, before, after) :: txn.undo_log;
      fire t txn tname (Trigger.Updated (rid, before, after)))
    victims;
  List.length victims

let delete_where t txn tname ~where =
  check_writable txn;
  statement_boundary t;
  let table = table t tname in
  acquire t txn (Lock_manager.Table tname) Lock_manager.X;
  let schema = Table.schema table in
  let victims = matching ~mode:t.plan_mode table where in
  List.iter
    (fun (rid, before) ->
      Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:(Some before);
      Table.raw_delete table rid ~old_tuple:before;
      log_dml t
        {
          Log_record.tx = txn.id;
          body =
            Log_record.Delete { table = tname; rid; before = Codec.encode_binary schema before };
        };
      txn.undo_log <- U_delete (tname, rid, before) :: txn.undo_log;
      fire t txn tname (Trigger.Deleted (rid, before)))
    victims;
  List.length victims

(* snapshot read path: resolve each candidate rid through the version
   store; readers take no locks and are never blocked *)

let snapshot_visible t tname ~csn rid current =
  match Version_store.resolve t.vstore ~table:tname ~rid ~csn with
  | `Current -> current
  | `Image tuple -> Some tuple
  | `Absent -> None

let snapshot_matching t txn table tname where =
  let schema = Table.schema table in
  (match where with Some e -> check_columns schema e | None -> ());
  let csn = txn.snapshot_csn in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let keep tuple = match where with None -> true | Some e -> Expr.eval_pred schema tuple e in
  let consider rid current =
    if not (Hashtbl.mem seen rid) then begin
      Hashtbl.add seen rid ();
      match snapshot_visible t tname ~csn rid current with
      | Some tuple when keep tuple -> acc := (rid, tuple) :: !acc
      | Some _ | None -> ()
    end
  in
  (match t.plan_mode, where with
   | `Index_preferred, Some e -> (
       match key_bounds schema e with
       | (None, None) -> Table.scan table (fun rid tuple -> consider rid (Some tuple))
       | (lo, hi) -> Table.key_range table ~lo ~hi (fun rid tuple -> consider rid (Some tuple)))
   | (`Scan_only | `Index_preferred), _ ->
     Table.scan table (fun rid tuple -> consider rid (Some tuple)));
  (* rows the heap/index pass cannot surface — deleted since the snapshot,
     or re-keyed out of the index bounds — still have version chains *)
  let heap = Table.heap table in
  Version_store.iter_table t.vstore ~table:tname (fun rid ->
      if not (Hashtbl.mem seen rid) then
        consider rid
          (if Heap_file.exists_at heap rid then Some (Heap_file.get heap rid) else None));
  List.sort (fun (a, _) (b, _) -> Heap_file.rid_compare a b) !acc

let snapshot_find_by_key t txn tname key =
  let table = table t tname in
  let schema = Table.schema table in
  let csn = txn.snapshot_csn in
  let key_of tuple = Tuple.key schema tuple in
  let hit = ref None in
  (match Table.find_key table key with
   | Some (rid, tuple) -> (
       match snapshot_visible t tname ~csn rid (Some tuple) with
       | Some img when Tuple.compare (key_of img) key = 0 -> hit := Some (rid, img)
       | Some _ | None -> ())
   | None -> ());
  (* the key's snapshot-time row may have been deleted or re-keyed since;
     its version chain still holds the image *)
  if !hit = None then begin
    let heap = Table.heap table in
    Version_store.iter_table t.vstore ~table:tname (fun rid ->
        if !hit = None then
          let current =
            if Heap_file.exists_at heap rid then Some (Heap_file.get heap rid) else None
          in
          match snapshot_visible t tname ~csn rid current with
          | Some img when Tuple.compare (key_of img) key = 0 -> hit := Some (rid, img)
          | Some _ | None -> ())
  end;
  !hit

(* row-level DML *)

let find_by_key t txn tname key =
  check_live txn;
  match txn.mode with
  | `Snapshot -> snapshot_find_by_key t txn tname key
  | `Read_write -> (
      let table = table t tname in
      match Table.find_key table key with
      | None -> None
      | Some (rid, tuple) as hit ->
        acquire t txn (Lock_manager.Row (tname, rid)) Lock_manager.S;
        ignore tuple;
        hit)

let insert_row t txn tname tuple =
  check_writable txn;
  let table = table t tname in
  let tuple = stamp t table tuple in
  let rid = Table.raw_insert table tuple in
  acquire t txn (Lock_manager.Row (tname, rid)) Lock_manager.X;
  Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:None;
  log_dml t
    {
      Log_record.tx = txn.id;
      body =
        Log_record.Insert
          { table = tname; rid; after = Codec.encode_binary (Table.schema table) tuple };
    };
  txn.undo_log <- U_insert (tname, rid, tuple) :: txn.undo_log;
  fire t txn tname (Trigger.Inserted (rid, tuple));
  rid

let update_rid t txn tname rid tuple =
  check_writable txn;
  let table = table t tname in
  acquire t txn (Lock_manager.Row (tname, rid)) Lock_manager.X;
  let schema = Table.schema table in
  let before = Heap_file.get (Table.heap table) rid in
  let after = stamp t table tuple in
  Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:(Some before);
  Table.raw_update table rid ~old_tuple:before after;
  log_dml t
    {
      Log_record.tx = txn.id;
      body =
        Log_record.Update
          {
            table = tname;
            rid;
            before = Codec.encode_binary schema before;
            after = Codec.encode_binary schema after;
          };
    };
  txn.undo_log <- U_update (tname, rid, before, after) :: txn.undo_log;
  fire t txn tname (Trigger.Updated (rid, before, after))

let delete_rid t txn tname rid =
  check_writable txn;
  let table = table t tname in
  acquire t txn (Lock_manager.Row (tname, rid)) Lock_manager.X;
  let schema = Table.schema table in
  let before = Heap_file.get (Table.heap table) rid in
  Version_store.note t.vstore ~tx:txn.id ~table:tname ~rid ~image:(Some before);
  Table.raw_delete table rid ~old_tuple:before;
  log_dml t
    {
      Log_record.tx = txn.id;
      body = Log_record.Delete { table = tname; rid; before = Codec.encode_binary schema before };
    };
  txn.undo_log <- U_delete (tname, rid, before) :: txn.undo_log;
  fire t txn tname (Trigger.Deleted (rid, before))

let select t txn tname ?where () =
  check_live txn;
  statement_boundary t;
  let table = table t tname in
  match txn.mode with
  | `Snapshot ->
    (* lock-free: visibility comes from the snapshot CSN, not from S locks *)
    List.map snd (snapshot_matching t txn table tname where)
  | `Read_write ->
    acquire t txn (Lock_manager.Table tname) Lock_manager.S;
    List.map snd (matching ~mode:t.plan_mode table where)

(* SQL execution *)

type exec_result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Created

let schema_of_defs defs =
  (* key columns first (relative order preserved), then the rest *)
  let keys, others = List.partition (fun d -> d.Ast.col_key) defs in
  if keys = [] then invalid_arg "CREATE TABLE: at least one KEY column required";
  let to_col d =
    { Schema.name = d.Ast.col_name; ty = d.Ast.col_ty; nullable = d.Ast.col_nullable }
  in
  Schema.make ~key_arity:(List.length keys) (List.map to_col (keys @ others))

(* GROUP BY / aggregate SELECT evaluation *)
let exec_aggregate _t schema ~items ~group_by ~order_by tuples =
  List.iter
    (fun col ->
      if not (Schema.mem schema col) then
        invalid_arg (Printf.sprintf "GROUP BY: unknown column %s" col))
    group_by;
  let group_idxs = List.map (Schema.index_of schema) group_by in
  let module RowMap = Map.Make (struct
    type t = Value.t array

    let compare a b = Tuple.compare a b
  end) in
  let groups =
    if group_by = [] then
      (* one global group, present even over an empty input *)
      RowMap.singleton [||] tuples
    else
      List.fold_left
        (fun acc tuple ->
          let key = Array.of_list (List.map (fun i -> tuple.(i)) group_idxs) in
          RowMap.update key
            (function None -> Some [ tuple ] | Some l -> Some (tuple :: l))
            acc)
        RowMap.empty tuples
  in
  let agg_over rows fn e =
    let values () =
      List.filter_map
        (fun row ->
          let v = Expr.eval schema row e in
          if Value.is_null v then None else Some v)
        rows
    in
    match fn with
    | Ast.Count_star -> Value.Int (List.length rows)
    | Ast.Count -> Value.Int (List.length (values ()))
    | Ast.Sum -> List.fold_left Value.add (Value.Int 0) (values ())
    | Ast.Avg -> (
        match values () with
        | [] -> Value.Null
        | vs ->
          let total = List.fold_left Value.add (Value.Int 0) vs in
          Value.div
            (match total with Value.Int n -> Value.Float (float_of_int n) | v -> v)
            (Value.Float (float_of_int (List.length vs))))
    | Ast.Min -> (
        match values () with
        | [] -> Value.Null
        | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
    | Ast.Max -> (
        match values () with
        | [] -> Value.Null
        | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)
  in
  let names =
    List.mapi
      (fun i item ->
        match item with
        | Ast.Star -> invalid_arg "SELECT: * not allowed with aggregates/GROUP BY"
        | Ast.Item (_, Some alias) | Ast.Agg (_, _, Some alias) -> alias
        | Ast.Item (Expr.Col c, None) -> c
        | Ast.Item (_, None) | Ast.Agg (_, _, None) -> Printf.sprintf "col%d" i)
      items
  in
  let eval_group _key rows =
    (* non-aggregate items must be functionally determined by the group:
       enforce plain group-column references *)
    List.map
      (fun item ->
        match item with
        | Ast.Star -> assert false
        | Ast.Agg (Ast.Count_star, _, _) -> agg_over rows Ast.Count_star (Expr.Lit Value.Null)
        | Ast.Agg (fn, Some e, _) -> agg_over rows fn e
        | Ast.Agg (fn, None, _) ->
          if fn = Ast.Count_star then agg_over rows Ast.Count_star (Expr.Lit Value.Null)
          else invalid_arg "aggregate without argument"
        | Ast.Item (Expr.Col c, _) when List.mem c group_by -> (
            match rows with
            | row :: _ -> row.(Schema.index_of schema c)
            | [] -> Value.Null)
        | Ast.Item _ ->
          invalid_arg "SELECT with GROUP BY: non-aggregate items must be grouping columns")
      items
    |> Array.of_list
  in
  let out_rows = RowMap.fold (fun key rows acc -> eval_group key rows :: acc) groups [] in
  let out_rows = List.rev out_rows in
  let out_rows =
    if order_by = [] then out_rows
    else begin
      let idx_of name =
        match List.find_index (fun n -> n = name) names with
        | Some i -> i
        | None -> invalid_arg (Printf.sprintf "ORDER BY: unknown output column %s" name)
      in
      let idxs = List.map idx_of order_by in
      List.sort
        (fun a b ->
          let rec go = function
            | [] -> 0
            | i :: rest ->
              let c = Value.compare a.(i) b.(i) in
              if c <> 0 then c else go rest
          in
          go idxs)
        out_rows
    end
  in
  Rows { columns = names; rows = out_rows }

let exec t txn stmt =
  match stmt with
  | Ast.Create_table { table = tname; columns } ->
    check_writable txn;
    let schema = schema_of_defs columns in
    ignore (create_table t ~name:tname schema : Table.t);
    Created
  | Ast.Insert { table = tname; columns; rows } ->
    List.iter
      (fun row -> ignore (insert_values t txn tname ~columns row : Heap_file.rid))
      rows;
    Affected (List.length rows)
  | Ast.Update { table = tname; sets; where } -> Affected (update_where t txn tname ~set:sets ~where)
  | Ast.Delete { table = tname; where } -> Affected (delete_where t txn tname ~where)
  | Ast.Select { items; table = tname; where; group_by; order_by } ->
    let tbl = table t tname in
    let schema = Table.schema tbl in
    let tuples = select t txn tname ?where () in
    let has_agg =
      List.exists (function Ast.Agg _ -> true | Ast.Star | Ast.Item _ -> false) items
    in
    if has_agg || group_by <> [] then exec_aggregate t schema ~items ~group_by ~order_by tuples
    else begin
      let tuples =
        if order_by = [] then tuples
        else
          let idxs = List.map (Schema.index_of schema) order_by in
          List.sort
            (fun a b ->
              let rec go = function
                | [] -> 0
                | i :: rest ->
                  let c = Value.compare a.(i) b.(i) in
                  if c <> 0 then c else go rest
              in
              go idxs)
            tuples
      in
      let columns, project =
        match items with
        | [ Ast.Star ] ->
          ( List.map (fun c -> c.Schema.name) (Schema.columns schema),
            fun (tuple : Tuple.t) -> Array.copy tuple )
        | items ->
          let names =
            List.mapi
              (fun i item ->
                match item with
                | Ast.Star -> "*"
                | Ast.Item (_, Some alias) | Ast.Agg (_, _, Some alias) -> alias
                | Ast.Item (Expr.Col c, None) -> c
                | Ast.Item (_, None) | Ast.Agg (_, _, None) -> Printf.sprintf "col%d" i)
              items
          in
          let eval_item tuple item =
            match item with
            | Ast.Star -> invalid_arg "SELECT: * must be the only item"
            | Ast.Agg _ -> assert false
            | Ast.Item (e, _) -> Expr.eval schema tuple e
          in
          (names, fun tuple -> Array.of_list (List.map (eval_item tuple) items))
      in
      Rows { columns; rows = List.map project tuples }
    end

let exec_sql t txn input =
  match Dw_sql.Parser.parse input with
  | Error e -> Error e
  | Ok stmt -> (
      match exec t txn stmt with
      | result -> Ok result
      | exception Invalid_argument msg -> Error msg
      | exception Not_found -> Error (Printf.sprintf "unknown table %s" (Ast.table_of stmt)))

(* maintenance *)

let flush_all t = Buffer_pool.flush_all t.pool

let checkpoint t =
  flush_all t;
  (* the checkpoint's own flush (inside Wal.checkpoint) covers any open
     group; account it without a second fsync *)
  Group_commit.absorb t.group;
  ignore (Wal.checkpoint t.wal ~active:(active_txns t) : Wal.lsn)

let recover t =
  let resolve tname = Option.map Table.heap (table_opt t tname) in
  let stats = Recovery.run ~wal:t.wal ~resolve in
  Hashtbl.iter (fun _ table -> Table.rebuild_indexes table) t.tables;
  (* recovery rebuilds committed state in the heaps; an empty store makes
     every rid resolve to `Current, which is exactly right *)
  Version_store.clear t.vstore;
  stats

let reopen ?(pool_pages = 256) ?(pool_stripes = 1) ?(archive_log = false) ~vfs ~name
    ~tables:table_specs () =
  (* Wal.create adopts the surviving segments (truncating torn tails) *)
  let t = create ~pool_pages ~pool_stripes ~archive_log ~vfs ~name () in
  List.iter
    (fun (tname, schema, ts_column) ->
      let fname = heap_file_name name tname in
      (* a crash can predate the table's first page — attach still works
         on an empty file.  The index rebuild is deferred to [recover]: a
         crash mid-checkpoint can leave heap pages that together show one
         key at two rids (new page flushed, old page's delete not), which
         only WAL redo/undo resolves *)
      let file = Vfs.open_or_create vfs fname in
      let table =
        Table.attach ~rebuild_index:false ~pool:t.pool ~file ~name:tname ~schema ~ts_column
      in
      Hashtbl.add t.tables tname table)
    table_specs;
  let stats = recover t in
  (* transaction ids must keep growing across the crash, or post-recovery
     commits would collide with logged history *)
  let max_tx = ref 0 in
  Wal.iter_all t.wal (fun _ r -> if r.Log_record.tx > !max_tx then max_tx := r.Log_record.tx);
  t.next_txid <- !max_tx + 1;
  (t, stats)
