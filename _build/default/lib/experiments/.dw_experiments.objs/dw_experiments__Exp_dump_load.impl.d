lib/experiments/exp_dump_load.ml: Bench_support Dw_engine Dw_storage Dw_workload List Printf
