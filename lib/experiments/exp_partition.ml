(* T6 — partitioned warehouse refresh window vs partition count.

   ROADMAP item 1's measurement: the same op-delta stream staged into
   per-partition buckets (Dw_etl.Stage) and applied by
   Dw_warehouse.Partitioned on a Domain_pool, at 1/2/4/8 partitions
   (quick mode: 1/4).  Each shard is its own engine over its own Vfs, so
   the arms differ only in how many ways the identical delta volume is
   split and how many domains apply it.

   Like W5, the warehouse is made deliberately I/O-bound: every shard
   Vfs carries a per-operation delay and a small buffer pool, so the
   refresh window is dominated by simulated I/O that overlapping domains
   can actually hide.  Range partitioning is used because the PARTS
   workload's updates/deletes are contiguous key ranges — the staging
   tier routes almost all of them to a single partition, which is the
   regime partitioning is for (hash placement would broadcast every
   range predicate).

   After every arm, the merged logical state (sorted replica rows,
   SPJ-view rows, aggregate-view rows) is compared against a monolithic
   warehouse refreshed by the sequential integrator — the partitioned
   path must be byte-identical, which is also pinned as a qcheck
   property in test_partition.ml.

   Emitted metrics (the t6.* keys gated by Bench_check):
   - histogram  stage.bucket_ops (statements per staged bucket)
   - gauges     t6.window_p{n}_s, t6.stage_p{n}_s, t6.speedup_p4,
                t6.identical, t6.partitions, t6.delta_txns,
                t6.stage_routed, t6.stage_broadcast, t6.stage_split_rows *)

module Vfs = Dw_storage.Vfs
module Fault = Vfs.Fault
module Db = Dw_engine.Db
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Value = Dw_relation.Value
module Expr = Dw_relation.Expr
module Metrics = Dw_util.Metrics
module Domain_pool = Dw_util.Domain_pool
module Prng = Dw_util.Prng
module Workload = Dw_workload.Workload
module Op_delta = Dw_core.Op_delta
module Spj_view = Dw_core.Spj_view
module Agg_view = Dw_core.Agg_view
module Warehouse = Dw_warehouse.Warehouse
module Partition = Dw_warehouse.Partition
module Partitioned = Dw_warehouse.Partitioned
module Stage = Dw_etl.Stage
open Bench_support

let pool_pages = 24
let op_delay = 120e-6
let txn_size = 8

(* the views every arm (and the monolithic reference) maintains: one
   select-project slice and one all-integer aggregate view, so merged
   results are exact under any partitioning *)
let proj col = { Spj_view.out_name = col; from_side = Spj_view.L; from_col = col }

let spj_view =
  Spj_view.Select_project
    {
      name = "big_qty";
      table = "parts";
      schema = Workload.parts_schema;
      filter = Some (Expr.Cmp (Expr.Ge, Expr.Col "qty", Expr.Lit (Value.Int 500)));
      project = [ proj "part_id"; proj "qty" ];
    }

let agg_view =
  {
    Agg_view.name = "qty_band_stats";
    table = "parts";
    schema = Workload.parts_schema;
    filter = None;
    group_by = [ "qty" ];
    aggregates =
      [ ("n", Agg_view.Count); ("min_id", Agg_view.Min "part_id");
        ("max_id", Agg_view.Max "part_id") ];
  }

(* a deterministic 10x-delta-volume stream over id space [1, rows +
   inserts]: contiguous-range updates (the op-delta sweet spot), a
   steady trickle of inserts past the loaded range, and small deletes *)
let build_deltas ~rows ~txns ~seed =
  let next_id = ref (rows + 1) in
  List.init txns (fun i ->
      let txn_id = i + 1 in
      let stmts =
        if i mod 5 = 4 then begin
          let first_id = !next_id in
          next_id := !next_id + 4;
          Workload.insert_parts_txn ~seed ~first_id ~size:4 ~day:0 ()
        end
        else if i mod 11 = 10 then
          [ Workload.delete_parts_stmt ~first_id:(1 + (i * 13 mod (rows - 2))) ~size:2 ]
        else
          [
            Workload.update_parts_stmt
              ~first_id:(1 + (i * 37 mod (rows - txn_size)))
              ~size:txn_size;
          ]
      in
      Op_delta.make ~txn_id stmts)

let load_rows ~rows ~seed =
  let rng = Prng.create ~seed in
  List.init rows (fun i -> Workload.gen_part rng ~id:(i + 1) ~day:0)

(* ceil-spaced range bounds so the id space spreads evenly over p parts *)
let range_spec ~id_space ~parts =
  let bounds =
    List.init (parts - 1) (fun i -> 1 + (id_space * (i + 1) + parts - 1) / parts)
  in
  Partition.make ~table:"parts" ~key_column:"part_id" (Partition.Range bounds)

let mk_partitioned ?(pages = pool_pages) ?(op_delay = op_delay) ~rows ~seed ~parts ~id_space () =
  let spec = range_spec ~id_space ~parts in
  let pw = Partitioned.create ~pool_pages:pages ~op_delay ~spec ~name:"t6" () in
  Partitioned.add_replica pw ~table:"parts" ~schema:Workload.parts_schema;
  Partitioned.load_replica pw ~table:"parts" (load_rows ~rows ~seed);
  Partitioned.define_view pw spj_view;
  Partitioned.define_agg_view pw agg_view;
  pw

let mk_reference ~rows ~seed =
  let wh = Warehouse.create ~vfs:(Vfs.in_memory ()) ~name:"t6_ref" () in
  Warehouse.add_replica wh ~table:"parts" ~schema:Workload.parts_schema;
  Warehouse.load_replica wh ~table:"parts" (load_rows ~rows ~seed);
  Warehouse.define_view wh spj_view;
  Warehouse.define_agg_view wh agg_view;
  wh

type reference_state = {
  ref_rows : Tuple.t list;
  ref_view : (Tuple.t * int) list;
  ref_agg : (Tuple.t * int) list;
}

let reference_state wh =
  {
    ref_rows = List.sort Tuple.compare (Warehouse.replica_rows wh "parts");
    ref_view = Warehouse.view_rows wh "big_qty";
    ref_agg = Warehouse.agg_view_rows wh "qty_band_stats";
  }

let matches_reference expected pw =
  Partitioned.replica_rows pw "parts" = expected.ref_rows
  && Partitioned.view_rows pw "big_qty" = expected.ref_view
  && Partitioned.agg_view_rows pw "qty_band_stats" = expected.ref_agg

type arm = {
  parts : int;
  stage_s : float;
  window_s : float;
  stats : Warehouse.stats;
  stage_stats : Stage.stats;
  identical : bool;
}

let run_arm metrics ~rows ~seed ~id_space ~expected ~ods parts =
  let pw = mk_partitioned ~rows ~seed ~parts ~id_space () in
  let spec = Partitioned.spec pw in
  let t0 = Unix.gettimeofday () in
  let buckets, stage_stats = Stage.split ~spec ods in
  let stage_s = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun bucket ->
      Metrics.observe metrics "stage.bucket_ops"
        (float_of_int
           (List.fold_left (fun acc od -> acc + List.length od.Op_delta.ops) 0 bucket)))
    buckets;
  Domain_pool.with_pool ~domains:parts @@ fun pool ->
  let t1 = Unix.gettimeofday () in
  let stats = Partitioned.refresh ~pool pw buckets in
  let window_s = Unix.gettimeofday () -. t1 in
  let identical = matches_reference expected pw in
  Metrics.set_gauge metrics (Printf.sprintf "t6.window_p%d_s" parts) window_s;
  Metrics.set_gauge metrics (Printf.sprintf "t6.stage_p%d_s" parts) stage_s;
  { parts; stage_s; window_s; stats; stage_stats; identical }

let run_t6 ~scale =
  section "T6: partitioned refresh window vs partition count";
  let rows = scaled 2_000 ~scale in
  let txns = scaled 400 ~scale in
  let seed = 1906 in
  let part_counts = if is_quick () then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let ods = build_deltas ~rows ~txns ~seed in
  let id_space = rows + txns in
  let reference = mk_reference ~rows ~seed in
  ignore (Warehouse.integrate_op_deltas reference ods : Warehouse.stats);
  let expected = reference_state reference in
  let metrics = Metrics.create () in
  let arms =
    List.map (fun p -> run_arm metrics ~rows ~seed ~id_space ~expected ~ods p) part_counts
  in
  let arm p = List.find (fun a -> a.parts = p) arms in
  let speedup = (arm 1).window_s /. (arm 4).window_s in
  let identical = List.for_all (fun a -> a.identical) arms in
  let last = List.nth arms (List.length arms - 1) in
  Metrics.set_gauge metrics "t6.speedup_p4" speedup;
  Metrics.set_gauge metrics "t6.identical" (if identical then 1.0 else 0.0);
  Metrics.set_gauge metrics "t6.partitions" (float_of_int last.parts);
  Metrics.set_gauge metrics "t6.delta_txns" (float_of_int txns);
  Metrics.set_gauge metrics "t6.stage_routed" (float_of_int last.stage_stats.Stage.routed);
  Metrics.set_gauge metrics "t6.stage_broadcast"
    (float_of_int last.stage_stats.Stage.broadcast);
  Metrics.set_gauge metrics "t6.stage_split_rows"
    (float_of_int last.stage_stats.Stage.split_rows);
  print_table
    ~title:
      (Printf.sprintf
         "%d delta txns over %d rows (range-partitioned, pool %d pages/shard, %.0f us/op \
          vfs delay), one domain per partition"
         txns rows pool_pages (op_delay *. 1e6))
    ~header:[ "partitions"; "staging"; "refresh window"; "wh txns"; "speedup vs p1" ]
    ~rows:
      (List.map
         (fun a ->
           [
             string_of_int a.parts;
             dur a.stage_s;
             dur a.window_s;
             string_of_int a.stats.Warehouse.txns;
             Printf.sprintf "%.2fx" ((arm 1).window_s /. a.window_s);
           ])
         arms);
  Printf.printf
    "staged %d statements: %d routed to one partition, %d broadcast, %d insert rows split\n\
     speedup at 4 partitions vs 1: %.2fx; partitioned refresh %s the sequential integrator\n\
     shape check: the same delta volume split p ways refreshes in ~1/p the window — each \
     shard's WAL, pool and simulated I/O are private, so domains overlap sleeps instead of \
     serialising on one engine\n"
    last.stage_stats.Stage.statements last.stage_stats.Stage.routed
    last.stage_stats.Stage.broadcast last.stage_stats.Stage.split_rows speedup
    (if identical then "is byte-identical to" else "DIVERGES from")

(* ---------- crash-point explorer (the @crash alias's partitioned
   refresh coverage) ---------- *)

type crash_spec = {
  c_rows : int;
  c_txns : int;
  c_parts : int;
  c_seed : int;
}

let default_crash_spec = { c_rows = 64; c_txns = 12; c_parts = 3; c_seed = 11 }

(* make setup durable before arming fault plans: the initial load is
   bulk-unlogged, so without a checkpoint a crash during the refresh
   could lose loaded pages that WAL recovery has no records for *)
let checkpoint_shards pw =
  for i = 0 to Partitioned.partitions pw - 1 do
    Db.checkpoint (Warehouse.db (Partitioned.shard pw i))
  done

(* one shard crashes mid-refresh (its Vfs fail-stops at event k), the
   process restarts: every shard is re-adopted from its surviving bytes
   and the SAME staged buckets are re-applied.  Invariants: the merged
   final state equals the sequential integrator's, and every shard's
   watermark reached its bucket's last transaction — i.e. redelivered
   runs applied exactly once per shard. *)
let run_partitioned_crash_point spec ~totals ~shard:s index =
  let { c_rows = rows; c_txns = txns; c_parts = parts; c_seed = seed } = spec in
  let id_space = rows + txns in
  let ods = build_deltas ~rows ~txns ~seed in
  let reference = mk_reference ~rows ~seed in
  ignore (Warehouse.integrate_op_deltas reference ods : Warehouse.stats);
  let expected = reference_state reference in
  let pw = mk_partitioned ~pages:64 ~op_delay:0.0 ~rows ~seed ~parts ~id_space () in
  checkpoint_shards pw;
  let pspec = Partitioned.spec pw in
  let buckets, (_ : Stage.stats) = Stage.split ~spec:pspec ods in
  let vfss = Partitioned.vfss pw in
  Vfs.set_fault vfss.(s) (Some (Fault.make ~fail_stop_after:index ~seed:(seed + index) ()));
  (match
     Domain_pool.with_pool ~domains:parts (fun pool ->
         ignore (Partitioned.refresh ~pool pw buckets : Warehouse.stats))
   with
   | () -> ()
   | exception Fault.Crash _ -> ());
  let pw2 =
    Partitioned.reopen
      ~replicas:[ ("parts", Workload.parts_schema) ]
      ~views:[ spj_view ] ~agg_views:[ agg_view ] ~spec:pspec ~name:"t6" ~vfss ()
  in
  Domain_pool.with_pool ~domains:parts (fun pool ->
      ignore (Partitioned.refresh ~pool pw2 buckets : Warehouse.stats));
  let result =
    if not (matches_reference expected pw2) then
      Error "partitioned refresh diverged from the sequential integrator after recovery"
    else begin
      let wms = Partitioned.watermarks pw2 in
      let bad = ref None in
      Array.iteri
        (fun i bucket ->
          let want =
            List.fold_left (fun acc od -> max acc od.Op_delta.txn_id) 0 bucket
          in
          if wms.(i) <> want && !bad = None then bad := Some (i, wms.(i), want))
        buckets;
      match !bad with
      | Some (i, got, want) ->
        Error (Printf.sprintf "shard %d watermark %d after recovery, expected %d" i got want)
      | None -> Ok ()
    end
  in
  Array.iter (Crash_sim.accumulate totals) vfss;
  result

(* the fault-free event counts, per shard: the same workload runs once
   with counting-only fault plans armed after setup *)
let count_partitioned_events spec =
  let { c_rows = rows; c_txns = txns; c_parts = parts; c_seed = seed } = spec in
  let id_space = rows + txns in
  let ods = build_deltas ~rows ~txns ~seed in
  let pw = mk_partitioned ~pages:64 ~op_delay:0.0 ~rows ~seed ~parts ~id_space () in
  checkpoint_shards pw;
  let buckets, (_ : Stage.stats) = Stage.split ~spec:(Partitioned.spec pw) ods in
  let vfss = Partitioned.vfss pw in
  Array.iter (fun vfs -> Vfs.set_fault vfs (Some (Fault.make ~seed ()))) vfss;
  Domain_pool.with_pool ~domains:parts (fun pool ->
      ignore (Partitioned.refresh ~pool pw buckets : Warehouse.stats));
  Array.map (fun vfs -> match Vfs.fault vfs with Some f -> Fault.events f | None -> 0) vfss

let explore_partitioned ?(spec = default_crash_spec) ?(stride = 1) () =
  let events = count_partitioned_events spec in
  let totals = Metrics.create () in
  let failures = ref [] in
  let explored = ref 0 in
  Array.iteri
    (fun s total ->
      List.iter
        (fun k ->
          incr explored;
          match run_partitioned_crash_point spec ~totals ~shard:s k with
          | Ok () -> ()
          | Error msg ->
            failures := ((s * 10_000) + k, Printf.sprintf "shard %d: %s" s msg) :: !failures)
        (Crash_sim.indices ~total ~stride))
    events;
  {
    Crash_sim.total_events = Array.fold_left ( + ) 0 events;
    explored = !explored;
    failures = List.rev !failures;
    fault_metrics = Metrics.snapshot totals;
  }
