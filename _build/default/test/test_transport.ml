(* Tests for Dw_transport: file shipping across vfs instances, persistent
   queue semantics incl. crash recovery (redelivery of unacked messages). *)

module Vfs = Dw_storage.Vfs
module File_ship = Dw_transport.File_ship
module Persistent_queue = Dw_transport.Persistent_queue

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let write_file vfs name contents =
  let f = Vfs.create vfs name in
  ignore (Vfs.append f (Bytes.of_string contents) : int);
  Vfs.close f

let read_file vfs name =
  let f = Vfs.open_existing vfs name in
  let s = Bytes.to_string (Vfs.read_at f ~off:0 ~len:(Vfs.size f)) in
  Vfs.close f;
  s

let ship_roundtrip () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  let payload = String.concat "\n" (List.init 1000 (fun i -> Printf.sprintf "line-%d" i)) in
  write_file src "delta.asc" payload;
  (match
     File_ship.ship ~chunk_size:256 ~src ~src_name:"delta.asc" ~dst ~dst_name:"staged.asc" ()
   with
   | Ok stats ->
     check Alcotest.int "bytes" (String.length payload) stats.File_ship.bytes;
     check Alcotest.bool "chunked" true (stats.File_ship.chunks > 1)
   | Error e -> Alcotest.fail e);
  check Alcotest.string "identical" payload (read_file dst "staged.asc")

let ship_missing_source () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  check Alcotest.bool "missing" true
    (Result.is_error (File_ship.ship ~src ~src_name:"nope" ~dst ~dst_name:"x" ()))

let ship_empty_file () =
  let src = Vfs.in_memory () and dst = Vfs.in_memory () in
  write_file src "empty" "";
  match File_ship.ship ~src ~src_name:"empty" ~dst ~dst_name:"empty2" () with
  | Ok stats -> check Alcotest.int "zero bytes" 0 stats.File_ship.bytes
  | Error e -> Alcotest.fail e

let queue_fifo () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "a";
  Persistent_queue.enqueue q "b";
  Persistent_queue.enqueue q "c";
  check Alcotest.int "pending" 3 (Persistent_queue.pending q);
  check (Alcotest.option Alcotest.string) "peek a" (Some "a") (Persistent_queue.peek q);
  Persistent_queue.ack q;
  check (Alcotest.option Alcotest.string) "peek b" (Some "b") (Persistent_queue.peek q);
  Persistent_queue.ack q;
  Persistent_queue.ack q;
  check (Alcotest.option Alcotest.string) "drained" None (Persistent_queue.peek q);
  check Alcotest.int "pending 0" 0 (Persistent_queue.pending q);
  Persistent_queue.close q

let queue_ack_empty_raises () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  (try
     Persistent_queue.ack q;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  Persistent_queue.close q

let queue_crash_redelivery () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "batch1";
  Persistent_queue.enqueue q "batch2";
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.ack q;
  (* "crash": drop the handle without acking batch2, re-open *)
  ignore (Persistent_queue.peek q : string option);
  Persistent_queue.close q;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "one pending" 1 (Persistent_queue.pending q2);
  check (Alcotest.option Alcotest.string) "batch2 redelivered" (Some "batch2")
    (Persistent_queue.peek q2);
  check Alcotest.int "total" 2 (Persistent_queue.enqueued_total q2);
  Persistent_queue.close q2

let queue_binary_safe () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  let payload = String.init 256 Char.chr in
  Persistent_queue.enqueue q payload;
  check (Alcotest.option Alcotest.string) "binary payload" (Some payload)
    (Persistent_queue.peek q);
  Persistent_queue.close q

let queue_survives_torn_tail () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  Persistent_queue.enqueue q "ok";
  Persistent_queue.close q;
  (* simulate a torn enqueue *)
  let f = Vfs.open_existing vfs "dq.q" in
  ignore (Vfs.append f (Bytes.of_string "\x10\x00\x00\x00????") : int);
  Vfs.close f;
  let q2 = Persistent_queue.open_ vfs ~name:"dq" in
  check Alcotest.int "clean messages only" 1 (Persistent_queue.pending q2);
  Persistent_queue.close q2

(* end-to-end: op-deltas through the queue *)
let queue_ships_op_deltas () =
  let vfs = Vfs.in_memory () in
  let q = Persistent_queue.open_ vfs ~name:"dq" in
  let ods =
    List.init 5 (fun i ->
        Dw_core.Op_delta.make ~txn_id:i
          [ Dw_workload.Workload.update_parts_stmt ~first_id:i ~size:3 ])
  in
  List.iter (fun od -> Persistent_queue.enqueue q (Dw_core.Op_delta.encode_line od)) ods;
  let rec drain acc =
    match Persistent_queue.peek q with
    | None -> List.rev acc
    | Some line ->
      Persistent_queue.ack q;
      (match Dw_core.Op_delta.decode_line line with
       | Ok od -> drain (od :: acc)
       | Error e -> Alcotest.fail e)
  in
  let received = drain [] in
  check Alcotest.int "all delivered" 5 (List.length received);
  List.iter2
    (fun (a : Dw_core.Op_delta.t) (b : Dw_core.Op_delta.t) ->
      check Alcotest.int "txn ids in order" a.Dw_core.Op_delta.txn_id b.Dw_core.Op_delta.txn_id)
    ods received;
  Persistent_queue.close q

let suite =
  [
    test "ship roundtrip" ship_roundtrip;
    test "ship missing source" ship_missing_source;
    test "ship empty file" ship_empty_file;
    test "queue fifo" queue_fifo;
    test "queue ack empty raises" queue_ack_empty_raises;
    test "queue crash redelivery" queue_crash_redelivery;
    test "queue binary safe" queue_binary_safe;
    test "queue survives torn tail" queue_survives_torn_tail;
    test "queue ships op-deltas" queue_ships_op_deltas;
  ]
