(** Partitioned parallel snapshot SELECT: the OLAP read path fanned over a
    {!Dw_util.Domain_pool}.

    The planner splits the table's heap into contiguous page-range
    partitions fixed at plan time; each domain runs the snapshot scan
    (heap pass, then the version-chain pass restricted to its range) over
    one partition, filters, and — for aggregate queries — pre-aggregates
    its rows into per-group partials.  The coordinator merges partials in
    the exact order the single-domain executor would have evaluated
    (ordered operand lists for SUM/AVG, strictly-better merges for
    MIN/MAX), so results are {e byte-identical} to {!Dw_engine.Db.exec}
    on the same snapshot — including row order, [col%d] naming, Int/Float
    payloads on compare-equal ties, and error messages.

    Readers take no locks; safety against concurrent writers comes from
    the same version-store protocol the sequential snapshot path uses
    (DML notes before-images before touching the heap, pages only ever
    grow). *)

val default_partitions : int
(** Partition count used when [?partitions] is omitted (8). *)

val exec :
  ?partitions:int ->
  pool:Dw_util.Domain_pool.t ->
  Dw_engine.Db.t ->
  Dw_engine.Db.txn ->
  Dw_sql.Ast.stmt ->
  Dw_engine.Db.exec_result
(** Run a SELECT on [txn]'s snapshot across the pool's domains.  Raises
    [Invalid_argument] for non-SELECT statements, non-[`Snapshot]
    transactions, [partitions < 1], or any input the sequential executor
    rejects (same messages); raises [Not_found] for an unknown table. *)

val exec_sql :
  ?partitions:int ->
  pool:Dw_util.Domain_pool.t ->
  Dw_engine.Db.t ->
  Dw_engine.Db.txn ->
  string ->
  (Dw_engine.Db.exec_result, string) result
(** Parse then {!exec}, mapping exceptions to [Error] exactly like
    {!Dw_engine.Db.exec_sql}. *)
