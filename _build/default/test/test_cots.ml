(* Tests for Dw_cots: replicated heterogeneous sources, business-level
   Op-Delta capture vs per-replica value-delta extraction + reconciliation. *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Tuple = Dw_relation.Tuple
module Db = Dw_engine.Db
module Table = Dw_engine.Table
module Workload = Dw_workload.Workload
module Delta = Dw_core.Delta
module Op_delta = Dw_core.Op_delta
module Reconcile = Dw_core.Reconcile
module Enterprise = Dw_cots.Enterprise
module Prng = Dw_util.Prng

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let schema = Workload.parts_schema

let mk ?(sources = 3) () =
  Enterprise.create ~sources ~logical_table:"parts" ~logical_schema:schema ()

let submit_ok ent stmts =
  match Enterprise.submit ent stmts with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let run_business_mix ent ~seed ~txns =
  let rng = Prng.create ~seed in
  let ops = Workload.gen_mix rng ~existing_ids:20 ~txns ~max_txn_size:4 in
  List.iter (fun op -> submit_ok ent (Workload.op_to_stmts ~day:0 op)) ops

let seed_enterprise ent n =
  submit_ok ent (Workload.insert_parts_txn ~first_id:1 ~size:n ~day:0 ())

let physical_rows ent i =
  let db = Enterprise.source_db ent i in
  let rows = ref [] in
  Table.scan (Db.table db (Enterprise.physical_table ent i)) (fun _ t -> rows := t :: !rows);
  List.sort Tuple.compare !rows

let replicas_converge () =
  let ent = mk () in
  seed_enterprise ent 20;
  run_business_mix ent ~seed:1 ~txns:10;
  let r0 = physical_rows ent 0 and r1 = physical_rows ent 1 and r2 = physical_rows ent 2 in
  check Alcotest.int "same count 0/1" (List.length r0) (List.length r1);
  check Alcotest.int "same count 0/2" (List.length r0) (List.length r2);
  (* values are identical modulo column renaming: compare raw arrays *)
  List.iter2 (fun a b -> check Alcotest.bool "same values" true (Tuple.equal a b)) r0 r1

let heterogeneous_schemas_differ () =
  let ent = mk () in
  let s0 =
    Table.schema (Db.table (Enterprise.source_db ent 0) (Enterprise.physical_table ent 0))
  in
  let s1 =
    Table.schema (Db.table (Enterprise.source_db ent 1) (Enterprise.physical_table ent 1))
  in
  check Alcotest.bool "physically different schemas" false (Schema.equal s0 s1);
  check Alcotest.bool "different table names" true
    (Enterprise.physical_table ent 0 <> Enterprise.physical_table ent 1)

let wrapper_captures_once () =
  let ent = mk () in
  seed_enterprise ent 5;
  run_business_mix ent ~seed:2 ~txns:7;
  (* one op-delta per business transaction, regardless of replica count *)
  check Alcotest.int "8 business txns" 8 (List.length (Enterprise.business_op_deltas ent))

let value_streams_are_replicated () =
  let ent = mk () in
  seed_enterprise ent 10;
  run_business_mix ent ~seed:3 ~txns:6;
  let streams = Enterprise.extract_replica_value_deltas ent in
  check Alcotest.int "k streams" 3 (List.length streams);
  let counts = List.map Delta.row_count streams in
  (match counts with
   | c :: rest -> List.iter (fun c' -> check Alcotest.int "same volume per replica" c c') rest
   | [] -> Alcotest.fail "no streams");
  (* reconciliation collapses them to one authoritative stream *)
  let merged, stats = Reconcile.reconcile streams in
  check Alcotest.int "authoritative volume" (List.hd counts) (Delta.row_count merged);
  check Alcotest.int "duplicates dropped" (2 * List.hd counts)
    stats.Reconcile.duplicates_dropped;
  check Alcotest.int "no conflicts (exact replicas)" 0 stats.Reconcile.conflicts_resolved

let reconciled_equals_business_effects () =
  let ent = mk () in
  seed_enterprise ent 15;
  run_business_mix ent ~seed:4 ~txns:8;
  let streams = Enterprise.extract_replica_value_deltas ent in
  let merged, _ = Reconcile.reconcile streams in
  (* applying the reconciled delta to an empty logical table reproduces
     replica 0's physical contents *)
  let result = Delta.apply_to_rows merged [] in
  let expected = physical_rows ent 0 in
  check Alcotest.int "same count" (List.length expected) (List.length result);
  List.iter2
    (fun a b -> check Alcotest.bool "same rows" true (Tuple.equal a b))
    (List.sort Tuple.compare result) expected

let opdelta_volume_advantage () =
  let ent = mk () in
  seed_enterprise ent 30;
  submit_ok ent [ Workload.update_parts_stmt ~first_id:1 ~size:30 ];
  let op_bytes =
    List.fold_left
      (fun acc od -> acc + Op_delta.size_bytes od)
      0
      (Enterprise.business_op_deltas ent)
  in
  let value_bytes =
    List.fold_left
      (fun acc d -> acc + Delta.size_bytes d)
      0
      (Enterprise.extract_replica_value_deltas ent)
  in
  (* 3 replicas × (30 inserts + 30 updates×2 images) × 100B vs
     ~(30 insert stmts + 1 update stmt) of SQL text *)
  check Alcotest.bool "op-delta much smaller" true (op_bytes * 2 < value_bytes)

let submit_rejects_foreign_table () =
  let ent = mk () in
  match
    Enterprise.submit ent [ Dw_sql.Ast.Delete { table = "other"; where = None } ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected rejection"

let single_source_no_heterogeneity () =
  let ent =
    Enterprise.create ~heterogeneous:false ~sources:1 ~logical_table:"parts"
      ~logical_schema:schema ()
  in
  check Alcotest.string "physical = logical" "parts" (Enterprise.physical_table ent 0);
  seed_enterprise ent 3;
  check Alcotest.int "rows" 3 (List.length (physical_rows ent 0))

(* ---------- multi-table business transactions ---------- *)

let orders_schema =
  Schema.make
    [
      { Schema.name = "order_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "part_id"; ty = Value.Tint; nullable = false };
      { Schema.name = "amount"; ty = Value.Tint; nullable = false };
    ]

let mk_multi () =
  Enterprise.create ~sources:2 ~logical_table:"parts" ~logical_schema:schema
    ~extra_tables:[ ("orders", orders_schema) ] ()

let multi_table_business_txn () =
  let ent = mk_multi () in
  check (Alcotest.list Alcotest.string) "tables" [ "parts"; "orders" ]
    (Enterprise.logical_tables ent);
  (* one business transaction spanning both tables: take stock and book
     the order atomically *)
  seed_enterprise ent 5;
  let cross_txn =
    [
      Workload.update_parts_stmt ~first_id:3 ~size:1;
      Dw_sql.Ast.Insert
        { table = "orders"; columns = None; rows = [ [ Value.Int 1; Value.Int 3; Value.Int 7 ] ] };
    ]
  in
  submit_ok ent cross_txn;
  (* both replicas of both tables got the effects *)
  for i = 0 to 1 do
    let db = Enterprise.source_db ent i in
    let orders_physical =
      match Enterprise.logical_tables ent with
      | _ -> Printf.sprintf "orders_s%d" i
    in
    check Alcotest.int (Printf.sprintf "order row at source %d" i) 1
      (Table.row_count (Db.table db orders_physical))
  done;
  (* the wrapper kept the cross-table boundary: ONE op-delta holding both
     statements, in order *)
  let ods = Enterprise.business_op_deltas ent in
  let cross = List.nth ods (List.length ods - 1) in
  check (Alcotest.list Alcotest.string) "txn spans both tables" [ "parts"; "orders" ]
    (Op_delta.tables cross);
  check Alcotest.int "both statements in one txn" 2 (List.length cross.Op_delta.ops);
  (* the value-delta view of the same activity: two independent per-table
     streams with no transaction linkage *)
  let parts_stream = List.hd (Enterprise.extract_replica_value_deltas_for ent ~table:"parts") in
  let orders_stream = List.hd (Enterprise.extract_replica_value_deltas_for ent ~table:"orders") in
  check Alcotest.string "stream 1 is parts only" "parts" parts_stream.Delta.table;
  check Alcotest.string "stream 2 is orders only" "orders" orders_stream.Delta.table;
  check Alcotest.int "orders stream has the insert" 1 (Delta.row_count orders_stream)

let multi_table_value_delta_soundness () =
  let ent = mk_multi () in
  seed_enterprise ent 8;
  submit_ok ent
    [ Dw_sql.Ast.Insert
        { table = "orders"; columns = None; rows = [ [ Value.Int 1; Value.Int 2; Value.Int 5 ] ] } ];
  submit_ok ent [ Workload.delete_parts_stmt ~first_id:1 ~size:2 ];
  (* each table's reconciled stream replays to that table's state *)
  List.iter
    (fun table ->
      let streams = Enterprise.extract_replica_value_deltas_for ent ~table in
      let merged, _ = Reconcile.reconcile streams in
      let replayed = Delta.apply_to_rows merged [] in
      let db = Enterprise.source_db ent 0 in
      let physical = table ^ "_s0" in
      check Alcotest.int (table ^ " replay count")
        (Table.row_count (Db.table db physical))
        (List.length replayed))
    (Enterprise.logical_tables ent)

let suite =
  [
    test "replicas converge" replicas_converge;
    test "heterogeneous schemas differ" heterogeneous_schemas_differ;
    test "wrapper captures once" wrapper_captures_once;
    test "value streams are replicated" value_streams_are_replicated;
    test "reconciled equals business effects" reconciled_equals_business_effects;
    test "op-delta volume advantage" opdelta_volume_advantage;
    test "submit rejects foreign table" submit_rejects_foreign_table;
    test "single source no heterogeneity" single_source_no_heterogeneity;
    test "multi-table business txn keeps boundaries" multi_table_business_txn;
    test "multi-table value deltas sound" multi_table_value_delta_soundness;
  ]
