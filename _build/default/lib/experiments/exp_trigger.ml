(* Experiment F2 — paper Figure 2: insert/delete/update trigger overhead
   as a function of transaction size.

   Expected shape: insert overhead roughly constant (~80-100%); update
   overhead grows with transaction size (per-row base update cost shrinks
   as the scan amortises, the triggered 2 inserts/row do not); delete
   overhead in between. *)

module Db = Dw_engine.Db
module Workload = Dw_workload.Workload
module Trigger_extract = Dw_core.Trigger_extract
open Bench_support

type op_kind = Insert | Delete | Update

let op_name = function Insert -> "insert" | Delete -> "delete" | Update -> "update"

(* run one transaction of [size] affected rows against a fresh source,
   optionally with the capture trigger installed; returns seconds *)
let response_time ~table_rows ~with_trigger kind size =
  let setup () =
    let db = fresh_source ~rows:table_rows () in
    if with_trigger then
      ignore (Trigger_extract.install db ~table:"parts" : Trigger_extract.handle);
    let day = Db.current_day db + 1 in
    Db.set_day db day;
    let stmts =
      match kind with
      | Insert -> Workload.insert_parts_txn ~first_id:(table_rows + 1) ~size ~day ()
      | Delete -> [ Workload.delete_parts_stmt ~first_id:1 ~size ]
      | Update -> [ Workload.update_parts_stmt ~first_id:1 ~size ]
    in
    (db, stmts)
  in
  best_of ~setup (fun (db, stmts) ->
      Db.with_txn db (fun txn ->
          List.iter (fun stmt -> ignore (Db.exec db txn stmt : Db.exec_result)) stmts))

let run ~scale =
  section "F2 (Figure 2): insert/delete/update trigger overhead";
  (* the paper holds the source table at 100k rows for update/delete *)
  let table_rows = 20_000 * scale in
  let header = "Txn size" :: List.map string_of_int txn_sizes in
  let rows =
    List.concat_map
      (fun kind ->
        let base = List.map (response_time ~table_rows ~with_trigger:false kind) txn_sizes in
        let trig = List.map (response_time ~table_rows ~with_trigger:true kind) txn_sizes in
        let overhead =
          List.map2 (fun b t -> Printf.sprintf "%.0f%%" ((t -. b) /. b *. 100.0)) base trig
        in
        [
          (op_name kind ^ " (no trigger)") :: List.map dur base;
          (op_name kind ^ " (trigger)") :: List.map dur trig;
          (op_name kind ^ " overhead") :: overhead;
        ])
      [ Insert; Delete; Update ]
  in
  print_table ~title:"Figure 2: trigger overhead vs transaction size" ~header ~rows;
  print_endline
    "shape check (paper): insert overhead ~constant 80-100%; update overhead grows with txn \
     size (up to ~344%); delete overhead between them"


(* F2R — paper Section 3.1.3's remote-capture claim: writing the triggered
   delta "directly to an external system" costs an order of magnitude more
   when the staging database is another instance on the same machine, and
   10-100x across a LAN.  The external databases live on latency-injected
   Vfs backends (per-I/O delay standing in for IPC / 10 Mb/s-LAN RTT). *)

module Vfs = Dw_storage.Vfs
module Value = Dw_relation.Value
module Schema = Dw_relation.Schema
module Trigger = Dw_engine.Trigger
module Heap_file = Dw_storage.Heap_file

let delta_schema =
  Schema.make
    ({ Schema.name = "__seq"; ty = Value.Tint; nullable = false }
     :: Schema.columns Workload.parts_schema)

let remote_response_time ~table_rows ~target size =
  let setup () =
    let db = fresh_source ~rows:table_rows () in
    (match target with
     | `None -> ()
     | `Local_table | `Same_machine_db | `Lan_db ->
       let sink_db =
         match target with
         | `Local_table -> db
         | `Same_machine_db ->
           (* separate database process on the same host: IPC-ish latency *)
           Db.create ~vfs:(Vfs.in_memory ~op_delay:10e-6 ()) ~name:"staging" ()
         | `Lan_db ->
           (* staging across a 10 Mb/s switched LAN *)
           Db.create ~vfs:(Vfs.in_memory ~op_delay:100e-6 ()) ~name:"staging" ()
         | `None -> assert false
       in
       let _ = Db.create_table sink_db ~name:"delta" delta_schema in
       let seq = ref 0 in
       let write tuple =
         incr seq;
         let row = Array.append [| Value.Int !seq |] tuple in
         if sink_db == db then
           (* local: same transaction context, like Trigger_extract *)
           ()
         else
           (* external: its own transaction per row (the remote commit is
              what the paper's penalty is made of) *)
           Db.with_txn sink_db (fun txn ->
               ignore (Db.insert sink_db txn "delta" row : Heap_file.rid))
       in
       let local_write (ctx : Db.trigger_ctx) tuple =
         incr seq;
         let row = Array.append [| Value.Int !seq |] tuple in
         ignore (Db.insert ctx.Db.ctx_db ctx.Db.ctx_txn "delta" row : Heap_file.rid)
       in
       Db.add_trigger db ~table:"parts"
         {
           Trigger.name = "capture";
           on = [ Trigger.On_update ];
           action =
             (fun ctx event ->
               match event with
               | Trigger.Updated (_, before, after) ->
                 if sink_db == db then begin
                   local_write ctx before;
                   local_write ctx after
                 end
                 else begin
                   write before;
                   write after
                 end
               | Trigger.Inserted _ | Trigger.Deleted _ -> ());
         });
    let stmt = Workload.update_parts_stmt ~first_id:1 ~size in
    (db, stmt)
  in
  best_of ~repeat:3 ~setup (fun (db, stmt) ->
      Db.with_txn db (fun txn -> ignore (Db.exec db txn stmt : Db.exec_result)))

let run_remote ~scale =
  section "F2R (Section 3.1.3): trigger capture to local vs external staging";
  let table_rows = 5_000 * scale in
  let sizes = [ 10; 100; 1000 ] in
  let header = "Capture target" :: List.map string_of_int sizes in
  let base = List.map (remote_response_time ~table_rows ~target:`None) sizes in
  let local = List.map (remote_response_time ~table_rows ~target:`Local_table) sizes in
  let same = List.map (remote_response_time ~table_rows ~target:`Same_machine_db) sizes in
  let lan = List.map (remote_response_time ~table_rows ~target:`Lan_db) sizes in
  let row name times = name :: List.map dur times in
  let ratio name times =
    name
    :: List.map2 (fun l t -> Printf.sprintf "%.1fx" (t /. l)) local times
  in
  print_table ~title:"update transaction response time by capture target" ~header
    ~rows:
      [
        row "no capture" base;
        row "local delta table" local;
        row "separate DB, same machine" same;
        row "DB across 10Mb/s LAN" lan;
        ratio "same-machine vs local" same;
        ratio "LAN vs local" lan;
      ];
  print_endline
    "shape check (paper): external capture costs ~10x (same machine) to 10-100x (LAN) the \
     local delta table"
