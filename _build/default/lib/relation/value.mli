(** Scalar values and their column types.

    The engine is typed: every column has a {!ty} and every slot of a tuple
    holds a {!t} compatible with that type ([Null] is compatible with any
    nullable column).  Dates are stored as days since 1970-01-01 so that
    timestamp-based delta extraction (Section 3.1.1 of the paper) is a plain
    integer comparison. *)

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tdate
  | Tstring of int  (** maximum byte length *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Date of int  (** days since epoch *)
  | Str of string
  | Null

val ty_compatible : ty -> t -> bool
(** Does the value fit the column type?  [Null] fits every type. *)

val compare : t -> t -> int
(** Total order: Null < Bool < Int/Float/Date (numeric order, comparable
    with each other where sensible) < Str.  Int and Float compare
    numerically against each other; Date compares only with Date. *)

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic.  Int op Int stays Int (division truncates); any Float
    operand promotes to Float; [Null] propagates; other combinations raise
    [Invalid_argument]. *)

val is_null : t -> bool

val ty_to_string : ty -> string
val ty_of_string : string -> ty option
(** Parses what {!ty_to_string} produces, e.g. ["INT"], ["STRING(40)"]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_sql_literal : t -> string
(** Render as a literal of the SQL dialect (strings quoted and escaped). *)

val encoded_size : ty -> int
(** Fixed on-disk width of a value of this column type, in bytes. *)

val date_of_ymd : year:int -> month:int -> day:int -> t
(** Convenience constructor; no leap-second pedantry, proleptic Gregorian. *)
