(** Fixed-size pages and the heap-page record layout.

    A heap page stores fixed-width records (width given by the table
    schema).  Layout:

    {v
    offset 0   u16  record width
    offset 2   u16  slot capacity
    offset 4   bitmap of used slots, (capacity+7)/8 bytes
    then       capacity * width record bytes
    v} *)

val size : int
(** Page size in bytes (4096). *)

val alloc : unit -> bytes
(** A zeroed page. *)

type slot = int

val init : bytes -> record_width:int -> unit
(** Format an empty heap page for records of the given width.
    Raises [Invalid_argument] if the width doesn't fit a page. *)

val capacity : bytes -> int
val record_width : bytes -> int
val used_count : bytes -> int
val is_used : bytes -> slot -> bool

val insert : bytes -> bytes -> slot option
(** [insert page record] places the record in a free slot; [None] when
    full.  The record must be exactly [record_width page] bytes. *)

val write_slot : bytes -> slot -> bytes -> unit
(** Overwrite a used slot in place (fixed-width update). *)

val read_slot : bytes -> slot -> bytes
(** Raises [Invalid_argument] if the slot is free or out of range. *)

val delete : bytes -> slot -> unit
(** Free the slot.  Raises [Invalid_argument] if already free. *)

val force_use : bytes -> slot -> unit
(** Mark the slot used without writing record bytes (recovery-only;
    followed by {!write_slot}).  No-op if already used. *)

val iter_used : bytes -> (slot -> bytes -> unit) -> unit
(** Visit every used slot in slot order. *)

val max_records_per_page : record_width:int -> int
(** How many records of this width fit one page. *)
