lib/experiments/exp_timestamp.ml: Bench_support Dw_core Dw_engine Dw_storage Dw_transport Dw_workload List Printf
