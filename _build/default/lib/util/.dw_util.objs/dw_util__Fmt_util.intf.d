lib/util/fmt_util.mli:
