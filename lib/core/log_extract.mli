(** Archive-log based delta extraction (paper Section 3, method 4;
    discussion in 3.1.4).

    Reads the engine's retained redo-log segments (archiving must be on,
    or rotated segments are recycled and the delta window is lost) and
    reconstructs the value delta of {e committed} transactions for one
    table.  Characteristics the paper highlights, all modelled:

    - no impact on source transactions: extraction is a pure log read;
    - captures every state change (all intermediate images);
    - {b product lock-in}: the log is this engine's private format —
      {!ship} can only target a table with an identical schema in another
      instance of the same engine, applying records physically by rid,
      the way a recovery manager would;
    - transaction identifiers are present in the log, so this extractor
      optionally groups changes per source transaction (the one value-
      delta method that could preserve boundaries — within one database). *)

module Db = Dw_engine.Db

type stats = {
  records_scanned : int;   (** log records visited *)
  log_bytes : int;         (** bytes of retained log read *)
  committed_txns : int;    (** committed transactions touching the table *)
}

val work_units : log_records:int -> delta_rows:int -> float
(** Deterministic extraction-work estimate in abstract row-visit units —
    the cost hook {!Dw_etl.Planner} calibrates and compares across
    methods.  A log extraction visits every retained record since the
    watermark (all tables, commits, aborts) and emits the committed rows
    of the one table asked for: [log_records + delta_rows].  The source
    pays nothing — the paper's headline property of this method. *)

val extract :
  ?since_lsn:Dw_txn.Wal.lsn ->
  Db.t ->
  table:string ->
  unit ->
  Delta.t * stats
(** Committed changes in LSN order.  Uncommitted and aborted transactions
    are excluded (their effects never reach the warehouse). *)

val extract_grouped :
  ?since_lsn:Dw_txn.Wal.lsn ->
  Db.t ->
  table:string ->
  unit ->
  (int * Delta.t) list * stats
(** Same, grouped per committed source transaction (txn id, delta). *)

val ship :
  src:Db.t -> dest:Db.t -> table:string -> (int, string) result
(** Physically apply the committed log of [table] to the same-named table
    of [dest] (recovery-manager style: by rid).  Fails unless the
    destination schema equals the source schema — the paper's "the schema
    of the source and the destination must match exactly".  Returns the
    number of records applied. *)
