module Db = Dw_engine.Db

type query = { name : string; sql : string }

let standard_queries ~table =
  [
    { name = "row count"; sql = Printf.sprintf "SELECT COUNT(*) FROM %s" table };
    {
      name = "stock value";
      sql = Printf.sprintf "SELECT SUM(qty) AS units, SUM(price) AS value FROM %s" table;
    };
    {
      name = "per-qty histogram";
      sql =
        Printf.sprintf "SELECT qty, COUNT(*) AS n, AVG(price) FROM %s GROUP BY qty ORDER BY qty"
          table;
    };
    {
      name = "low-stock price extremes";
      sql =
        Printf.sprintf "SELECT MIN(price), MAX(price) FROM %s WHERE qty < 100" table;
    };
    {
      name = "id band";
      sql =
        Printf.sprintf
          "SELECT part_id, price FROM %s WHERE part_id >= 100 AND part_id < 200 ORDER BY part_id"
          table;
    };
  ]

type query_result = { query : string; rows : int; duration : float }

let run ?(mode = `Snapshot) wh q =
  let db = Warehouse.db wh in
  let start = Unix.gettimeofday () in
  let txn = Db.begin_txn ~mode db in
  let outcome = Db.exec_sql db txn q.sql in
  (* read-only: anything but a row set is rolled back *)
  (match outcome with Ok (Db.Rows _) -> Db.commit db txn | Ok _ | Error _ -> Db.abort db txn);
  match outcome with
  | Ok (Db.Rows { rows; _ }) ->
    Ok { query = q.name; rows = List.length rows; duration = Unix.gettimeofday () -. start }
  | Ok (Db.Affected _ | Db.Created) -> Error (q.name ^ ": not a query")
  | Error e -> Error (q.name ^ ": " ^ e)

let run_all ?mode wh queries =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | q :: rest -> (
        match run ?mode wh q with
        | Ok r -> go (r :: acc) rest
        | Error e -> (List.rev acc, Some e))
  in
  go [] queries
