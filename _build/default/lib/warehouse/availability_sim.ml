type config = {
  write_jobs : int list;
  query_duration : int;
  query_interval : int;
  horizon : int;
}

type report = {
  makespan : int;
  maintenance_done : int;
  queries_admitted : int;
  queries_completed : int;
  total_query_wait : int;
  max_query_wait : int;
  outage_time : int;
}

type req_kind = Reader | Writer of int  (* writer index *)

type request = {
  kind : req_kind;
  duration : int;
  arrived : int;
}

type event =
  | Arrival of request
  | Reader_done
  | Writer_done of int  (* writer index *)

module Events = struct
  (* (time, tie priority, seq)-keyed sorted list; completions before
     arrivals at the same instant so a freed lock is grantable *)
  type t = { mutable items : (int * int * int * event) list; mutable seq : int }

  let create () = { items = []; seq = 0 }

  let push t time event =
    let prio = match event with Reader_done | Writer_done _ -> 0 | Arrival _ -> 1 in
    t.seq <- t.seq + 1;
    t.items <-
      List.merge
        (fun (t1, p1, s1, _) (t2, p2, s2, _) -> compare (t1, p1, s1) (t2, p2, s2))
        t.items
        [ (time, prio, t.seq, event) ]

  let pop t =
    match t.items with
    | [] -> None
    | (time, _, _, event) :: rest ->
      t.items <- rest;
      Some (time, event)
end

let run config =
  if config.query_duration <= 0 || config.query_interval <= 0 then
    invalid_arg "Availability_sim.run: non-positive query parameters";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Availability_sim.run: non-positive write job")
    config.write_jobs;
  let write_jobs = Array.of_list config.write_jobs in
  let events = Events.create () in
  (* query arrivals *)
  let admitted = ref 0 in
  let rec admit t =
    if t < config.horizon then begin
      incr admitted;
      Events.push events t
        (Arrival { kind = Reader; duration = config.query_duration; arrived = t });
      admit (t + config.query_interval)
    end
  in
  admit config.query_interval;
  (* first writer *)
  if Array.length write_jobs > 0 then
    Events.push events 0 (Arrival { kind = Writer 0; duration = write_jobs.(0); arrived = 0 });
  (* lock state *)
  let active_readers = ref 0 in
  let active_writer = ref false in
  let queue : request Queue.t = Queue.create () in
  let now = ref 0 in
  let blocked_queries () =
    Queue.fold (fun acc r -> if r.kind = Reader then acc + 1 else acc) 0 queue
  in
  let outage = ref 0 in
  let total_wait = ref 0 in
  let max_wait = ref 0 in
  let completed_queries = ref 0 in
  let maintenance_done = ref 0 in
  let grant_front () =
    let progress = ref true in
    while !progress && not (Queue.is_empty queue) do
      let front = Queue.peek queue in
      let compatible =
        match front.kind with
        | Reader -> not !active_writer
        | Writer _ -> (not !active_writer) && !active_readers = 0
      in
      if compatible then begin
        ignore (Queue.pop queue : request);
        let wait = !now - front.arrived in
        (match front.kind with
         | Reader ->
           total_wait := !total_wait + wait;
           if wait > !max_wait then max_wait := wait;
           incr active_readers;
           Events.push events (!now + front.duration) Reader_done
         | Writer i ->
           active_writer := true;
           Events.push events (!now + front.duration) (Writer_done i))
      end
      else progress := false
    done
  in
  let advance_to time =
    if time > !now then begin
      if blocked_queries () > 0 then outage := !outage + (time - !now);
      now := time
    end
  in
  let rec loop () =
    match Events.pop events with
    | None -> ()
    | Some (time, event) ->
      advance_to time;
      (match event with
       | Arrival req -> Queue.push req queue
       | Reader_done ->
         active_readers := !active_readers - 1;
         incr completed_queries
       | Writer_done i ->
         active_writer := false;
         maintenance_done := !now;
         if i + 1 < Array.length write_jobs then
           Events.push events !now
             (Arrival { kind = Writer (i + 1); duration = write_jobs.(i + 1); arrived = !now }));
      grant_front ();
      loop ()
  in
  grant_front ();
  loop ();
  {
    makespan = !now;
    maintenance_done = !maintenance_done;
    queries_admitted = !admitted;
    queries_completed = !completed_queries;
    total_query_wait = !total_wait;
    max_query_wait = !max_wait;
    outage_time = !outage;
  }
