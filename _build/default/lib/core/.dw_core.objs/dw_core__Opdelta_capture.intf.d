lib/core/opdelta_capture.mli: Dw_engine Dw_relation Dw_sql Op_delta Spj_view
