(** Formatting helpers shared by benches and examples. *)

val human_bytes : int -> string
(** [human_bytes 1536] is ["1.5KB"]; units up to TB. *)

val human_duration : float -> string
(** [human_duration seconds] renders like the paper's tables: ["43min"],
    ["1hr 8min"], ["862ms"], ["3.2s"]. *)

val pad : int -> string -> string
(** [pad w s] right-pads [s] with spaces to width [w] (no-op if longer). *)

val table : header:string list -> rows:string list list -> string
(** Render an aligned plain-text table with a separator under the header. *)
