type binop = Add | Sub | Mul | Div
type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Lit of Value.t
  | Binop of binop * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t

let apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b

let apply_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    Value.Bool
      (match op with
       | Eq -> c = 0
       | Neq -> c <> 0
       | Lt -> c < 0
       | Le -> c <= 0
       | Gt -> c > 0
       | Ge -> c >= 0)

let bad_bool v =
  invalid_arg (Printf.sprintf "Expr.eval: expected boolean, got %s" (Value.to_string v))

let rec eval schema tuple expr =
  match expr with
  | Col name -> tuple.(Schema.index_of schema name)
  | Lit v -> v
  | Binop (op, a, b) -> apply_binop op (eval schema tuple a) (eval schema tuple b)
  | Cmp (op, a, b) -> apply_cmp op (eval schema tuple a) (eval schema tuple b)
  | And (a, b) ->
    (match eval schema tuple a with
     | Value.Bool false -> Value.Bool false
     | Value.Bool true -> as_bool (eval schema tuple b)
     | Value.Null -> Value.Bool false
     | v -> bad_bool v)
  | Or (a, b) ->
    (match eval schema tuple a with
     | Value.Bool true -> Value.Bool true
     | Value.Bool false -> as_bool (eval schema tuple b)
     | Value.Null -> as_bool (eval schema tuple b)
     | v -> bad_bool v)
  | Not a ->
    (match eval schema tuple a with
     | Value.Bool b -> Value.Bool (not b)
     | Value.Null -> Value.Bool false
     | v -> bad_bool v)
  | Is_null a -> Value.Bool (Value.is_null (eval schema tuple a))
  | Is_not_null a -> Value.Bool (not (Value.is_null (eval schema tuple a)))

and as_bool = function
  | Value.Bool _ as v -> v
  | Value.Null -> Value.Bool false
  | v -> bad_bool v

let eval_pred schema tuple expr =
  match eval schema tuple expr with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> bad_bool v

let columns expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Col name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        acc := name :: !acc
      end
    | Lit _ -> ()
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a | Is_null a | Is_not_null a -> go a
  in
  go expr;
  List.rev !acc

let rec equal a b =
  match a, b with
  | Col x, Col y -> x = y
  | Lit x, Lit y -> Value.equal x y || (Value.is_null x && Value.is_null y)
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) -> equal a1 a2 && equal b1 b2
  | Not x, Not y | Is_null x, Is_null y | Is_not_null x, Is_not_null y -> equal x y
  | (Col _ | Lit _ | Binop _ | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Is_not_null _), _ ->
    false

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmp_str = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(* precedence: Or=1, And=2, Not=3, Cmp=4, Add/Sub=5, Mul/Div=6, atom=7 *)
let prec = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ -> 3
  | Cmp _ | Is_null _ | Is_not_null _ -> 4
  | Binop ((Add | Sub), _, _) -> 5
  | Binop ((Mul | Div), _, _) -> 6
  | Col _ | Lit _ -> 7

let rec pp_prec ctx ppf expr =
  let p = prec expr in
  let parens = p < ctx in
  if parens then Format.pp_print_char ppf '(';
  (match expr with
   | Col name -> Format.pp_print_string ppf name
   | Lit v -> Format.pp_print_string ppf (Value.to_sql_literal v)
   | Binop (op, a, b) ->
     Format.fprintf ppf "%a %s %a" (pp_prec p) a (binop_str op) (pp_prec (p + 1)) b
   | Cmp (op, a, b) ->
     Format.fprintf ppf "%a %s %a" (pp_prec (p + 1)) a (cmp_str op) (pp_prec (p + 1)) b
   (* AND/OR parse right-associatively, so the right operand prints at the
      operator's own precedence and the left one is forced tighter *)
   | And (a, b) -> Format.fprintf ppf "%a AND %a" (pp_prec (p + 1)) a (pp_prec p) b
   | Or (a, b) -> Format.fprintf ppf "%a OR %a" (pp_prec (p + 1)) a (pp_prec p) b
   | Not a -> Format.fprintf ppf "NOT %a" (pp_prec (p + 1)) a
   | Is_null a -> Format.fprintf ppf "%a IS NULL" (pp_prec (p + 1)) a
   | Is_not_null a -> Format.fprintf ppf "%a IS NOT NULL" (pp_prec (p + 1)) a);
  if parens then Format.pp_print_char ppf ')'

let pp ppf expr = pp_prec 0 ppf expr
let to_string expr = Format.asprintf "%a" pp expr

let conj = function
  | [] -> None
  | p :: ps -> Some (List.fold_left (fun acc q -> And (acc, q)) p ps)
