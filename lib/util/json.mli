(** Minimal JSON values, printer, and parser.

    Used by the instrumentation layer ({!Metrics.to_json}) and the bench
    harness to emit machine-readable experiment results, and by the
    [@bench-json] schema validator to check them.  No external dependency
    — the repo rule is "no new packages". *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [Float] nan/infinity become [null] (JSON has no
    representation for them), so emitted documents always re-parse. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  [\uXXXX] escapes are decoded as
    UTF-8 (BMP only; surrogate pairs are not combined). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list option
val to_number : t -> float option
(** [Int] and [Float] both convert; everything else is [None]. *)

val to_str : t -> string option
