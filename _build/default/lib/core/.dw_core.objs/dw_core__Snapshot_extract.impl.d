lib/core/snapshot_extract.ml: Delta Dw_engine Dw_relation Dw_snapshot List
